//! A/B harness for the CDCL kernel and inprocessing overhaul: the
//! modern solver (dedicated binary watch lists, in-place watch scan,
//! vivification, on-the-fly strengthening, rephasing, tiered learnt
//! store) versus the legacy configuration ([`SolverFeatures::legacy`])
//! with every new feature switched off.
//!
//! Three suites, written to `BENCH_solver.json` at the repo root:
//!
//! * **BCP**: assumption-driven implication-chain cascades that spend
//!   nearly all their time inside the propagation kernel, in two
//!   layouts: clauses inserted along the propagation front (the legacy
//!   kernel's best case — arena reads stream sequentially) and
//!   scrambled insertion, which reproduces the decorrelated arena of a
//!   solver mid-search. The headline propagation-throughput geomean is
//!   taken over the scrambled rows; the in-order rows act as controls
//!   (they favour the legacy kernel by construction and are expected to
//!   sit near 1.0).
//! * **raw CNF**: crafted pigeonhole / parity families plus seeded
//!   random 3-SAT near the phase transition, solved directly. Reports
//!   end-to-end solve time, propagations/sec, and conflicts/sec per
//!   configuration; verdicts must agree.
//! * **synthesis**: seeded QAOA, QUEKO, and arithmetic (QFT/Toffoli)
//!   layout synthesis driven through `optimize_depth`, with
//!   [`SynthesisConfig::solver_features`] toggled. Optima must agree;
//!   solver counters come from an armed recorder.
//!
//! The summary prints the geometric-mean speedup (legacy time over
//! modern time) and the geometric-mean propagation-throughput ratio
//! (modern props/sec over legacy props/sec) across all cases.

use olsq2::{Olsq2Synthesizer, Recorder, SynthesisConfig};
use olsq2_arch::{grid, line, CouplingGraph};
use olsq2_bench::BenchOpts;
use olsq2_circuit::generators::{qaoa_circuit, qft_decomposed, queko_circuit, tof_circuit};
use olsq2_circuit::Circuit;
use olsq2_prng::Rng;
use olsq2_sat::{Lit, SolveResult, Solver, SolverFeatures, Var};
use std::fmt::Write as _;
use std::time::Instant;

/// One configuration's measurement of one case.
struct Measure {
    time_us: u128,
    propagations: u64,
    conflicts: u64,
}

impl Measure {
    fn props_per_sec(&self) -> f64 {
        self.propagations as f64 / (self.time_us.max(1) as f64 / 1e6)
    }

    fn conflicts_per_sec(&self) -> f64 {
        self.conflicts as f64 / (self.time_us.max(1) as f64 / 1e6)
    }
}

struct CnfRow {
    case: String,
    verdict: &'static str,
    modern: Measure,
    legacy: Measure,
    agree: bool,
    /// Median over interleaved trial pairs of legacy/modern time.
    paired_speedup: f64,
    /// One measurement per single-feature ablation (label, time_us).
    ablations: Vec<(&'static str, u128)>,
}

struct SynthRow {
    case: String,
    device: String,
    depth: usize,
    modern: Measure,
    legacy: Measure,
    agree: bool,
    /// Median over interleaved trial pairs of legacy/modern time.
    paired_speedup: f64,
    /// One measurement per single-feature ablation (label, time_us);
    /// an ablated run that misses the optimum is reported as a mismatch.
    ablations: Vec<(&'static str, u128)>,
}

/// The new search policies, each peeled off the modern default alone so a
/// regression names its feature. `legacy()` stays the all-off anchor.
fn ablation_grid() -> Vec<(&'static str, SolverFeatures)> {
    let modern = SolverFeatures::default();
    vec![
        (
            "-chrono",
            SolverFeatures {
                chrono_backtrack: false,
                ..modern
            },
        ),
        (
            "-glucose",
            SolverFeatures {
                glucose_restarts: false,
                restart_postpone: false,
                ..modern
            },
        ),
        (
            "-target",
            SolverFeatures {
                target_phase: false,
                ..modern
            },
        ),
        (
            "-seed",
            SolverFeatures {
                structure_seeding: false,
                ..modern
            },
        ),
    ]
}

// ---------------------------------------------------------------- CNF suite

fn lit_of(code: i32) -> Lit {
    let var = Var::from_index(code.unsigned_abs() as usize - 1);
    Lit::new(var, code < 0)
}

/// PHP(pigeons, holes): binary-clause heavy, UNSAT when over-full — the
/// stress case for the dedicated binary watch lists.
fn pigeonhole(pigeons: usize, holes: usize) -> (usize, Vec<Vec<i32>>) {
    let var = |p: usize, h: usize| (p * holes + h + 1) as i32;
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| var(p, h)).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                clauses.push(vec![-var(p1, h), -var(p2, h)]);
            }
        }
    }
    (pigeons * holes, clauses)
}

/// A random XOR system expanded to CNF — resolution-hard, so vivification
/// and clause-database quality dominate.
fn parity_system(rng: &mut Rng, num_vars: usize, equations: usize) -> (usize, Vec<Vec<i32>>) {
    let mut clauses = Vec::new();
    for _ in 0..equations {
        let mut vars = Vec::new();
        while vars.len() < 3 {
            let v = rng.gen_range(1i32..=num_vars as i32);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let rhs = rng.gen_bool(0.5);
        let (a, b, c) = (vars[0], vars[1], vars[2]);
        for mask in 0..8u32 {
            let parity = (mask.count_ones() % 2 == 1) == rhs;
            if !parity {
                let sign = |bit: u32, v: i32| if (mask >> bit) & 1 == 1 { -v } else { v };
                clauses.push(vec![sign(0, a), sign(1, b), sign(2, c)]);
            }
        }
    }
    (num_vars, clauses)
}

/// Uniform random 3-SAT at the given clause/variable ratio.
fn random_3sat(rng: &mut Rng, num_vars: usize, ratio: f64) -> (usize, Vec<Vec<i32>>) {
    let num_clauses = (num_vars as f64 * ratio) as usize;
    let clauses = (0..num_clauses)
        .map(|_| {
            let mut vars = Vec::new();
            while vars.len() < 3 {
                let v = rng.gen_range(1i32..=num_vars as i32);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            vars.into_iter()
                .map(|v| if rng.gen_bool(0.5) { -v } else { v })
                .collect()
        })
        .collect();
    (num_vars, clauses)
}

/// Propagation-kernel stress: `chains` parallel implication chains of
/// `len` variables each. Assuming the chain heads forces a full BCP
/// cascade down every chain, so repeated incremental solves measure raw
/// propagation throughput with search, analysis, and the learnt store
/// all idle. `arity` 2 exercises the dedicated binary watch lists,
/// 3 the long-clause kernel (each link also watches the previous
/// variable), and the mixed variant alternates.
fn chain_system(chains: usize, len: usize, arity: usize) -> (usize, Vec<Vec<i32>>, Vec<i32>) {
    let mut clauses = Vec::new();
    let mut assumptions = Vec::new();
    for c in 0..chains {
        let v = |i: usize| (c * len + i + 1) as i32;
        assumptions.push(v(0));
        assumptions.push(v(1));
        for i in 1..len - 1 {
            let link_arity = match arity {
                2 | 3 => arity,
                _ => 2 + (i % 2),
            };
            if link_arity == 2 {
                clauses.push(vec![-v(i), v(i + 1)]);
            } else {
                clauses.push(vec![-v(i - 1), -v(i), v(i + 1)]);
            }
        }
    }
    (chains * len, clauses, assumptions)
}

/// Implication chains where every node additionally implies `fanout`
/// fresh leaf variables, so each propagated chain literal scans a
/// watcher block of `fanout + 1` binary clauses.
fn fanout_system(chains: usize, len: usize, fanout: usize) -> (usize, Vec<Vec<i32>>, Vec<i32>) {
    let per_chain = len * (1 + fanout);
    let mut clauses = Vec::new();
    let mut assumptions = Vec::new();
    for c in 0..chains {
        let base = (c * per_chain) as i32;
        let v = |i: usize| base + i as i32 + 1;
        let leaf = |i: usize, f: usize| base + (len + i * fanout + f) as i32 + 1;
        for i in 0..len {
            if i + 1 < len {
                clauses.push(vec![-v(i), v(i + 1)]);
            }
            for f in 0..fanout {
                clauses.push(vec![-v(i), leaf(i, f)]);
            }
        }
        assumptions.push(v(0));
    }
    (chains * per_chain, clauses, assumptions)
}

/// Fisher-Yates shuffle of clause insertion order. In-order insertion
/// lays the clause arena out exactly along the propagation front, which
/// is the legacy kernel's best case: its per-propagation arena reads
/// become a sequential, prefetch-friendly stream. A solver that has
/// been learning, reducing, and garbage-collecting has no such luck —
/// watcher order and arena order decorrelate, and every binary
/// propagation costs the legacy kernel a dependent random arena access.
/// Scrambling insertion order reproduces that steady state, which is
/// where the inline-implied-literal watchers actually earn their keep.
fn shuffle_clauses(rng: &mut Rng, clauses: &mut [Vec<i32>]) {
    for i in (1..clauses.len()).rev() {
        let j = rng.gen_range(0..=i);
        clauses.swap(i, j);
    }
}

fn solve_cnf(
    num_vars: usize,
    clauses: &[Vec<i32>],
    assumptions: &[Lit],
    repeats: usize,
    features: SolverFeatures,
) -> (SolveResult, Measure) {
    let mut s = Solver::new();
    s.set_features(features);
    for _ in 0..num_vars {
        s.new_var();
    }
    for clause in clauses {
        s.add_clause(clause.iter().map(|&c| lit_of(c)));
    }
    let start = Instant::now();
    let mut verdict = SolveResult::Unknown;
    for _ in 0..repeats {
        verdict = s.solve(assumptions);
    }
    let time_us = start.elapsed().as_micros();
    let stats = s.stats();
    (
        verdict,
        Measure {
            time_us,
            propagations: stats.propagations,
            conflicts: stats.conflicts,
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn ab_case(
    case: &str,
    num_vars: usize,
    clauses: &[Vec<i32>],
    assumptions: &[i32],
    repeats: usize,
    trials: usize,
    ablate: bool,
    rows: &mut Vec<CnfRow>,
) {
    let assumptions: Vec<Lit> = assumptions.iter().map(|&c| lit_of(c)).collect();
    // Trials interleave the two configurations, so the two runs of a
    // pair see (nearly) the same host conditions and their time ratio is
    // meaningful even while absolute throughput drifts by tens of
    // percent. The per-case speedup is the *median of paired ratios* —
    // the standard robust estimator for A/B timing on a shared host —
    // while the fastest trial per side is kept for the absolute
    // (props/sec) columns. Every trial gets a fresh solver so state
    // can't leak between measurements.
    let mut modern: Option<(SolveResult, Measure)> = None;
    let mut legacy: Option<(SolveResult, Measure)> = None;
    let mut pair_ratios: Vec<f64> = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut pair = [0u128; 2];
        for (i, (slot, features)) in [
            (&mut modern, SolverFeatures::default()),
            (&mut legacy, SolverFeatures::legacy()),
        ]
        .into_iter()
        .enumerate()
        {
            let (v, m) = solve_cnf(num_vars, clauses, &assumptions, repeats, features);
            pair[i] = m.time_us;
            if slot.as_ref().is_none_or(|(_, b)| m.time_us < b.time_us) {
                *slot = Some((v, m));
            }
        }
        pair_ratios.push(pair[1].max(1) as f64 / pair[0].max(1) as f64);
    }
    pair_ratios.sort_by(|a, b| a.total_cmp(b));
    let paired_speedup = pair_ratios[pair_ratios.len() / 2];
    let (vm, modern) = modern.expect("at least one trial");
    let (vl, legacy) = legacy.expect("at least one trial");
    let mut ablations = Vec::new();
    if ablate {
        for (label, features) in ablation_grid() {
            let (v, m) = solve_cnf(num_vars, clauses, &assumptions, repeats, features);
            assert_eq!(v, vm, "{case}{label}: ablated verdict flipped");
            ablations.push((label, m.time_us));
        }
    }
    rows.push(CnfRow {
        case: case.to_string(),
        verdict: match vm {
            SolveResult::Sat => "SAT",
            SolveResult::Unsat => "UNSAT",
            SolveResult::Unknown => "UNKNOWN",
        },
        agree: vm == vl,
        modern,
        legacy,
        paired_speedup,
        ablations,
    });
}

fn cnf_case(case: &str, num_vars: usize, clauses: &[Vec<i32>], rows: &mut Vec<CnfRow>) {
    ab_case(case, num_vars, clauses, &[], 1, 3, true, rows);
}

// ---------------------------------------------------------- synthesis suite

fn synth_run(
    circuit: &Circuit,
    graph: &CouplingGraph,
    swap_duration: usize,
    opts: &BenchOpts,
    features: SolverFeatures,
) -> Option<(usize, Measure)> {
    let recorder = Recorder::new();
    let config = SynthesisConfig {
        swap_duration,
        time_budget: Some(opts.budget),
        recorder: recorder.clone(),
        solver_features: features,
        ..SynthesisConfig::default()
    };
    let start = Instant::now();
    let out = Olsq2Synthesizer::new(config)
        .optimize_depth(circuit, graph)
        .ok()?;
    let time_us = start.elapsed().as_micros();
    let counters = recorder.snapshot().counters;
    Some((
        out.result.depth,
        Measure {
            time_us,
            propagations: counters.get("sat.propagations").copied().unwrap_or(0),
            conflicts: counters.get("sat.conflicts").copied().unwrap_or(0),
        },
    ))
}

fn synth_case(
    case: &str,
    circuit: &Circuit,
    graph: &CouplingGraph,
    swap_duration: usize,
    opts: &BenchOpts,
    rows: &mut Vec<SynthRow>,
) {
    // Interleaved paired trials, mirroring `ab_case`: the per-case
    // speedup is the median of the paired legacy/modern time ratios,
    // while the fastest run per side feeds the absolute columns.
    let mut modern: Option<(usize, Measure)> = None;
    let mut legacy: Option<(usize, Measure)> = None;
    let mut pair_ratios: Vec<f64> = Vec::new();
    for _ in 0..3 {
        let mut pair = [0u128; 2];
        for (i, (slot, features)) in [
            (&mut modern, SolverFeatures::default()),
            (&mut legacy, SolverFeatures::legacy()),
        ]
        .into_iter()
        .enumerate()
        {
            if let Some((d, m)) = synth_run(circuit, graph, swap_duration, opts, features) {
                pair[i] = m.time_us;
                if slot.as_ref().is_none_or(|(_, b)| m.time_us < b.time_us) {
                    *slot = Some((d, m));
                }
            }
        }
        if pair[0] > 0 && pair[1] > 0 {
            pair_ratios.push(pair[1] as f64 / pair[0] as f64);
        }
    }
    pair_ratios.sort_by(|a, b| a.total_cmp(b));
    match (modern, legacy) {
        (Some((dm, modern)), Some((dl, legacy))) => {
            let paired_speedup = pair_ratios
                .get(pair_ratios.len() / 2)
                .copied()
                .unwrap_or(legacy.time_us.max(1) as f64 / modern.time_us.max(1) as f64);
            let mut ablations = Vec::new();
            let mut agree = dm == dl;
            for (label, features) in ablation_grid() {
                match synth_run(circuit, graph, swap_duration, opts, features) {
                    Some((d, m)) => {
                        agree &= d == dm;
                        ablations.push((label, m.time_us));
                    }
                    None => eprintln!("{case}{label}: ablated run failed"),
                }
            }
            rows.push(SynthRow {
                case: case.to_string(),
                device: graph.name().to_string(),
                depth: dm,
                agree,
                modern,
                legacy,
                paired_speedup,
                ablations,
            });
        }
        (a, b) => eprintln!(
            "skipping {case}: modern={} legacy={}",
            if a.is_some() { "ok" } else { "failed" },
            if b.is_some() { "ok" } else { "failed" },
        ),
    }
}

// ------------------------------------------------------------------ summary

fn geomean(ratios: &[f64]) -> f64 {
    let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    (log_sum / ratios.len().max(1) as f64).exp()
}

fn main() {
    let opts = BenchOpts::from_args();
    let mut bcp: Vec<CnfRow> = Vec::new();
    let mut cnf: Vec<CnfRow> = Vec::new();
    let mut synth: Vec<SynthRow> = Vec::new();

    // Propagation-kernel suite: assumption-driven BCP cascades down long
    // implication chains, repeated so each case spends its time almost
    // entirely inside the propagation kernel. This is the direct
    // measurement of propagation throughput; the search suites below
    // measure end-to-end behavior instead.
    let (chains, len, repeats) = if opts.full {
        (8, 100_000, 6)
    } else {
        (8, 40_000, 5)
    };
    for (label, arity) in [("bin", 2), ("tern", 3), ("mixed", 0)] {
        let (nv, clauses, assumptions) = chain_system(chains, len, arity);
        ab_case(
            &format!("bcp-{label}-{chains}x{len}"),
            nv,
            &clauses,
            &assumptions,
            repeats,
            5,
            false, // conflict-free BCP: search-policy ablations carry no signal
            &mut bcp,
        );
    }
    // Scrambled insertion order: the arena no longer tracks the
    // propagation front, as in a solver mid-search (see
    // `shuffle_clauses`). Fan-out widens the watcher block scanned per
    // chain literal.
    let mut rng = Rng::seed_from_u64(opts.seed ^ 0x501E_0003);
    for fanout in [0usize, 4, 8] {
        let flen = len / (1 + fanout);
        let (nv, mut clauses, assumptions) = fanout_system(chains, flen, fanout);
        shuffle_clauses(&mut rng, &mut clauses);
        ab_case(
            &format!("bcp-scram-f{fanout}-{chains}x{flen}"),
            nv,
            &clauses,
            &assumptions,
            repeats,
            5,
            false,
            &mut bcp,
        );
    }

    // Raw CNF: pigeonhole (binary-heavy UNSAT), parity (resolution-hard),
    // random 3-SAT near the phase transition (SAT/UNSAT mix).
    let php_cases: Vec<(usize, usize)> = if opts.full {
        vec![(7, 6), (8, 7), (9, 8)]
    } else {
        vec![(6, 5), (7, 6), (8, 7)]
    };
    for (p, h) in php_cases {
        let (nv, clauses) = pigeonhole(p, h);
        cnf_case(&format!("php-{p}-{h}"), nv, &clauses, &mut cnf);
    }
    let mut rng = Rng::seed_from_u64(opts.seed ^ 0x501E_0001);
    // Uniform random 3-XOR decomposes into small cores at any size, so
    // these rows stay under the measurability floor; they ride along as
    // verdict-agreement controls rather than timing rows.
    let parity_cases: Vec<(usize, usize)> = if opts.full {
        vec![(34, 38), (36, 40), (38, 42)]
    } else {
        vec![(28, 32), (30, 34), (32, 36)]
    };
    for (i, (nv, eqs)) in parity_cases.into_iter().enumerate() {
        let (nv, clauses) = parity_system(&mut rng, nv, eqs);
        cnf_case(&format!("parity-{i}-{nv}v"), nv, &clauses, &mut cnf);
    }
    let mut rng = Rng::seed_from_u64(opts.seed ^ 0x501E_0002);
    let (sat_vars, rounds) = if opts.full { (180, 4) } else { (130, 3) };
    for i in 0..rounds {
        let (nv, clauses) = random_3sat(&mut rng, sat_vars, 4.26);
        cnf_case(&format!("r3sat-{i}-{nv}v"), nv, &clauses, &mut cnf);
    }

    // Synthesis: QAOA (routing-heavy), QUEKO (known-optimal), arithmetic.
    let qaoa_cases: Vec<(usize, CouplingGraph)> = if opts.full {
        vec![(8, grid(3, 3)), (10, grid(4, 3)), (12, grid(4, 4))]
    } else {
        vec![(6, grid(2, 3)), (8, grid(3, 3))]
    };
    for (n, graph) in qaoa_cases {
        let circuit = qaoa_circuit(n, opts.seed);
        synth_case(&format!("qaoa-{n}"), &circuit, &graph, 1, &opts, &mut synth);
    }
    let queko_cases: Vec<(CouplingGraph, usize, usize)> = if opts.full {
        vec![(grid(3, 3), 6, 24), (grid(4, 4), 8, 48)]
    } else {
        vec![(grid(2, 3), 5, 16), (grid(3, 3), 4, 12)]
    };
    for (graph, depth, gates) in queko_cases {
        let q = queko_circuit(graph.num_qubits(), graph.edges(), depth, gates, opts.seed);
        synth_case(
            &format!("queko-{depth}x{gates}"),
            &q.circuit,
            &graph,
            3,
            &opts,
            &mut synth,
        );
    }
    let arith_cases: Vec<(&str, Circuit, CouplingGraph)> = if opts.full {
        vec![
            ("qft-5", qft_decomposed(5), line(5)),
            ("tof-4", tof_circuit(4), line(7)),
        ]
    } else {
        vec![
            ("qft-4", qft_decomposed(4), line(4)),
            ("tof-3", tof_circuit(3), line(5)),
        ]
    };
    for (case, circuit, graph) in arith_cases {
        synth_case(case, &circuit, &graph, 3, &opts, &mut synth);
    }

    // ---- report ----
    println!("Propagation kernel: binary watch lists + in-place scan vs legacy\n");
    println!(
        "{:<18} {:>8} {:>11} {:>11} {:>8} {:>12} {:>12}",
        "case", "verdict", "modern", "legacy", "speedup", "mprops/s", "lprops/s"
    );
    for r in &bcp {
        println!(
            "{:<18} {:>8} {:>9}us {:>9}us {:>7.2}x {:>12.0} {:>12.0}{}",
            r.case,
            r.verdict,
            r.modern.time_us,
            r.legacy.time_us,
            r.paired_speedup,
            r.modern.props_per_sec(),
            r.legacy.props_per_sec(),
            if r.agree { "" } else { "  VERDICT MISMATCH" },
        );
    }

    // Ablation columns: modern time over the single-feature-off time, so
    // a value above 1.0 means the feature pays for itself on that row and
    // below 1.0 means it costs time there.
    let ablation_ratio = |modern_us: u128, ablations: &[(&str, u128)], label: &str| -> f64 {
        ablations
            .iter()
            .find(|(l, _)| *l == label)
            .map(|&(_, us)| us.max(1) as f64 / modern_us.max(1) as f64)
            .unwrap_or(f64::NAN)
    };
    println!("\nRaw CNF search: modern kernel + inprocessing vs legacy\n");
    println!(
        "{:<16} {:>8} {:>11} {:>11} {:>8} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "case",
        "verdict",
        "modern",
        "legacy",
        "speedup",
        "mprops/s",
        "lprops/s",
        "-chrono",
        "-glucose",
        "-target",
        "-seed"
    );
    for r in &cnf {
        println!(
            "{:<16} {:>8} {:>9}us {:>9}us {:>7.2}x {:>12.0} {:>12.0} {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x{}",
            r.case,
            r.verdict,
            r.modern.time_us,
            r.legacy.time_us,
            r.paired_speedup,
            r.modern.props_per_sec(),
            r.legacy.props_per_sec(),
            ablation_ratio(r.modern.time_us, &r.ablations, "-chrono"),
            ablation_ratio(r.modern.time_us, &r.ablations, "-glucose"),
            ablation_ratio(r.modern.time_us, &r.ablations, "-target"),
            ablation_ratio(r.modern.time_us, &r.ablations, "-seed"),
            if r.agree { "" } else { "  VERDICT MISMATCH" },
        );
    }

    println!("\nSynthesis (optimize_depth): solver_features on vs off\n");
    println!(
        "{:<14} {:<10} {:>6} {:>11} {:>11} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "case",
        "device",
        "depth",
        "modern",
        "legacy",
        "speedup",
        "-chrono",
        "-glucose",
        "-target",
        "-seed"
    );
    for r in &synth {
        println!(
            "{:<14} {:<10} {:>6} {:>9}us {:>9}us {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x{}",
            r.case,
            r.device,
            r.depth,
            r.modern.time_us,
            r.legacy.time_us,
            r.paired_speedup,
            ablation_ratio(r.modern.time_us, &r.ablations, "-chrono"),
            ablation_ratio(r.modern.time_us, &r.ablations, "-glucose"),
            ablation_ratio(r.modern.time_us, &r.ablations, "-target"),
            ablation_ratio(r.modern.time_us, &r.ablations, "-seed"),
            if r.agree { "" } else { "  OPTIMUM MISMATCH" },
        );
    }

    // The throughput headline comes from the propagation suite — the
    // cases constructed so the kernel is the measurement, not a few
    // percent of it. The time headline covers the search + synthesis
    // corpus, where trajectories (and so total work) legitimately differ
    // between configurations.
    // Cases under a millisecond in both configurations carry no signal —
    // at that scale the measurement is allocator and scheduler noise —
    // so they are reported above but left out of the geomean.
    let measurable = |m: &Measure, l: &Measure| m.time_us.max(l.time_us) >= 1000;
    let time_ratios: Vec<f64> = cnf
        .iter()
        .filter(|r| measurable(&r.modern, &r.legacy))
        .map(|r| r.paired_speedup)
        .chain(
            synth
                .iter()
                .filter(|r| measurable(&r.modern, &r.legacy))
                .map(|r| r.paired_speedup),
        )
        .collect();
    // Both configurations do identical propagation work on the BCP
    // suite (no conflicts, no learning), so the throughput ratio is the
    // paired time ratio corrected by the (equal up to rounding)
    // propagation counts. The headline is taken over the scrambled rows
    // — the arena layout a solver actually has mid-search. The in-order
    // rows are controls: their sequential arena is the legacy kernel's
    // unreachable best case (it only exists before the first conflict),
    // and the tern/mixed variants exercise the long-clause path, which
    // both configurations share; they are expected to sit near 1.0 and
    // are reported to show the new kernel gives nothing back there.
    let throughput = |r: &CnfRow| {
        r.paired_speedup * (r.modern.propagations as f64 / r.legacy.propagations.max(1) as f64)
    };
    let prop_ratios: Vec<f64> = bcp
        .iter()
        .filter(|r| r.case.contains("scram"))
        .map(throughput)
        .collect();
    let control_ratios: Vec<f64> = bcp
        .iter()
        .filter(|r| !r.case.contains("scram"))
        .map(throughput)
        .collect();
    let time_geomean = geomean(&time_ratios);
    let prop_geomean = geomean(&prop_ratios);
    let control_geomean = geomean(&control_ratios);
    println!(
        "\ngeomean propagation-throughput ratio (scrambled-arena BCP rows): {prop_geomean:.2}x"
    );
    println!("geomean propagation-throughput ratio (in-order control rows): {control_geomean:.2}x");
    println!(
        "geomean end-to-end speedup, search + synthesis (legacy/modern time): {time_geomean:.2}x"
    );

    // Per-feature contribution: geomean over the measurable search rows
    // of (single-feature-off time / modern time) — above 1.0 means the
    // feature is earning its keep across the corpus.
    let mut feature_geomeans: Vec<(&'static str, f64)> = Vec::new();
    for (label, _) in ablation_grid() {
        let ratios: Vec<f64> = cnf
            .iter()
            .filter(|r| measurable(&r.modern, &r.legacy))
            .map(|r| ablation_ratio(r.modern.time_us, &r.ablations, label))
            .chain(
                synth
                    .iter()
                    .filter(|r| measurable(&r.modern, &r.legacy))
                    .map(|r| ablation_ratio(r.modern.time_us, &r.ablations, label)),
            )
            .filter(|x| x.is_finite())
            .collect();
        feature_geomeans.push((label, geomean(&ratios)));
    }
    for (label, g) in &feature_geomeans {
        println!("geomean ablation cost {label}: {g:.2}x");
    }

    let mismatches = bcp.iter().filter(|r| !r.agree).count()
        + cnf.iter().filter(|r| !r.agree).count()
        + synth.iter().filter(|r| !r.agree).count();

    // Ablation times as a nested object, keyed by the feature removed.
    let ablation_json = |ablations: &[(&str, u128)]| -> String {
        let mut s = String::from("{");
        for (i, (label, us)) in ablations.iter().enumerate() {
            let _ = write!(
                s,
                "\"{}\": {us}{}",
                label.trim_start_matches('-'),
                if i + 1 < ablations.len() { ", " } else { "" }
            );
        }
        s.push('}');
        s
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"harness\": \"solver\",");
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"full\": {},", opts.full);
    let _ = writeln!(json, "  \"mismatches\": {mismatches},");
    let _ = writeln!(json, "  \"geomean_time_speedup\": {time_geomean:.4},");
    let _ = writeln!(
        json,
        "  \"geomean_prop_throughput_ratio\": {prop_geomean:.4},"
    );
    let _ = writeln!(
        json,
        "  \"geomean_prop_throughput_control\": {control_geomean:.4},"
    );
    json.push_str("  \"ablation_geomeans\": {");
    for (i, (label, g)) in feature_geomeans.iter().enumerate() {
        let _ = write!(
            json,
            "\"{}\": {g:.4}{}",
            label.trim_start_matches('-'),
            if i + 1 < feature_geomeans.len() {
                ", "
            } else {
                ""
            }
        );
    }
    json.push_str("},\n");
    json.push_str("  \"bcp\": [\n");
    for (i, r) in bcp.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"verdict\": \"{}\", \
             \"modern_us\": {}, \"legacy_us\": {}, \
             \"modern_propagations\": {}, \"legacy_propagations\": {}, \
             \"modern_props_per_sec\": {:.0}, \"legacy_props_per_sec\": {:.0}, \
             \"paired_speedup\": {:.4}, \"agree\": {}}}{}",
            r.case,
            r.verdict,
            r.modern.time_us,
            r.legacy.time_us,
            r.modern.propagations,
            r.legacy.propagations,
            r.modern.props_per_sec(),
            r.legacy.props_per_sec(),
            r.paired_speedup,
            r.agree,
            if i + 1 < bcp.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"cnf\": [\n");
    for (i, r) in cnf.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"verdict\": \"{}\", \
             \"modern_us\": {}, \"legacy_us\": {}, \
             \"modern_propagations\": {}, \"legacy_propagations\": {}, \
             \"modern_conflicts\": {}, \"legacy_conflicts\": {}, \
             \"modern_props_per_sec\": {:.0}, \"legacy_props_per_sec\": {:.0}, \
             \"modern_conflicts_per_sec\": {:.0}, \"legacy_conflicts_per_sec\": {:.0}, \
             \"paired_speedup\": {:.4}, \"agree\": {}, \"ablation_us\": {}}}{}",
            r.case,
            r.verdict,
            r.modern.time_us,
            r.legacy.time_us,
            r.modern.propagations,
            r.legacy.propagations,
            r.modern.conflicts,
            r.legacy.conflicts,
            r.modern.props_per_sec(),
            r.legacy.props_per_sec(),
            r.modern.conflicts_per_sec(),
            r.legacy.conflicts_per_sec(),
            r.paired_speedup,
            r.agree,
            ablation_json(&r.ablations),
            if i + 1 < cnf.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"synthesis\": [\n");
    for (i, r) in synth.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"device\": \"{}\", \"depth\": {}, \
             \"modern_us\": {}, \"legacy_us\": {}, \
             \"modern_propagations\": {}, \"legacy_propagations\": {}, \
             \"paired_speedup\": {:.4}, \"agree\": {}, \"ablation_us\": {}}}{}",
            r.case,
            r.device,
            r.depth,
            r.modern.time_us,
            r.legacy.time_us,
            r.modern.propagations,
            r.legacy.propagations,
            r.paired_speedup,
            r.agree,
            ablation_json(&r.ablations),
            if i + 1 < synth.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\nfailed to write {out}: {e}"),
    }
    // The JSON artifact is written before the guards fire, so a failing
    // CI run still uploads the numbers that explain the failure.
    assert_eq!(mismatches, 0, "modern/legacy disagreed; see tables above");
    if let Some(gate) = opts.gate {
        assert!(
            time_geomean >= gate,
            "end-to-end geomean {time_geomean:.2}x below the --gate floor {gate:.2}x"
        );
        println!("gate passed: {time_geomean:.2}x >= {gate:.2}x");
    }
}
