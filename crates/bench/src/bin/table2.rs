//! Table II — cardinality-constraint encodings for the SWAP bound
//! (Eq. 5): the pseudo-Boolean path (binary adder network, standing in for
//! Z3's `AtMost`) versus the CNF sequential counter, on the flat and
//! transition-based models.
//!
//! Instances are layout problems for QAOA circuits on a grid with a fixed
//! SWAP-count bound (the paper: 5×5 grid, `S_B = 30`, `T_UB = 21` flat /
//! 5 blocks TB).
//!
//! All configurations share the substrate-best one-hot variable encoding
//! so the columns isolate the formulation (space variables or not;
//! flat or transition-based) and the cardinality path (adder network ≈
//! Z3's pseudo-Boolean `AtMost`, vs the CNF sequential counter).

use olsq2::{EncodingConfig, FlatModel, ModelStyle, SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::grid;
use olsq2_bench::{geomean_ratio, ratio, BenchOpts, Cell};
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_encode::CardEncoding;
use olsq2_sat::SolveResult;
use std::time::Instant;

#[allow(clippy::too_many_arguments)]
fn run_flat(
    circuit: &olsq2_circuit::Circuit,
    graph: &olsq2_arch::CouplingGraph,
    opts: &BenchOpts,
    style: ModelStyle,
    mut encoding: EncodingConfig,
    card: CardEncoding,
    t_ub: usize,
    s_b: usize,
) -> Cell {
    encoding.cardinality = card;
    let config = SynthesisConfig {
        encoding,
        swap_duration: 1,
        time_budget: Some(opts.budget),
        ..SynthesisConfig::default()
    };
    let start = Instant::now();
    let mut model = match FlatModel::build_with_style(circuit, graph, &config, t_ub, style) {
        Ok(m) => m,
        Err(e) => return Cell::Failed(e.to_string()),
    };
    let bound = model.swap_bound(s_b, s_b);
    model.solver_mut().set_deadline(Some(start + opts.budget));
    match model.solve(&[bound]) {
        SolveResult::Sat => Cell::Time(start.elapsed()),
        SolveResult::Unsat => Cell::Failed("unexpected UNSAT".into()),
        SolveResult::Unknown => Cell::Timeout,
    }
}

fn run_tb(
    circuit: &olsq2_circuit::Circuit,
    graph: &olsq2_arch::CouplingGraph,
    opts: &BenchOpts,
    mut encoding: EncodingConfig,
    card: CardEncoding,
    blocks: usize,
    s_b: usize,
) -> Cell {
    encoding.cardinality = card;
    let config = SynthesisConfig {
        encoding,
        swap_duration: 1,
        time_budget: Some(opts.budget),
        ..SynthesisConfig::default()
    };
    let synth = TbOlsq2Synthesizer::new(config);
    let start = Instant::now();
    match synth.solve_feasible(circuit, graph, blocks, Some(s_b)) {
        Ok(Some(_)) => Cell::Time(start.elapsed()),
        Ok(None) => Cell::Timeout,
        Err(e) => Cell::Failed(e.to_string()),
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let (g, sizes, t_ub, s_b, blocks): (usize, Vec<usize>, usize, usize, usize) = if opts.full {
        (5, vec![16, 18, 20, 22, 24], 21, 30, 5)
    } else {
        (4, vec![8, 10, 12], 12, 10, 4)
    };
    let graph = grid(g, g);
    println!(
        "Table II reproduction: cardinality encodings (grid {g}x{g}, S_B={s_b}, T_UB={t_ub} flat / {blocks} blocks TB)\n"
    );
    let headers = [
        "OLSQ",
        "TB-OLSQ",
        "OLSQ2(AtMost)",
        "OLSQ2(CNF)",
        "TB-OLSQ2(CNF)",
    ];
    print!("{:<11}", "qubit/gate");
    for h in headers {
        print!(" {:>15}", h);
    }
    println!();
    let mut per_config_pairs: Vec<Vec<(Cell, Cell)>> = vec![Vec::new(); headers.len()];
    for &n in &sizes {
        let circuit = qaoa_circuit(n, opts.seed);
        // "OLSQ": baseline formulation, int encoding, PB-style cardinality.
        let olsq = run_flat(
            &circuit,
            &graph,
            &opts,
            ModelStyle::OlsqBaseline,
            EncodingConfig::int(),
            CardEncoding::AdderNetwork,
            t_ub,
            s_b,
        );
        // "TB-OLSQ": transition model, int encoding, PB-style cardinality.
        let tb_olsq = run_tb(
            &circuit,
            &graph,
            &opts,
            EncodingConfig::int(),
            CardEncoding::AdderNetwork,
            blocks,
            s_b,
        );
        // "OLSQ2(AtMost)": succinct formulation, PB-style cardinality.
        let olsq2_atmost = run_flat(
            &circuit,
            &graph,
            &opts,
            ModelStyle::Olsq2,
            EncodingConfig::int(),
            CardEncoding::AdderNetwork,
            t_ub,
            s_b,
        );
        // "OLSQ2(CNF)": succinct formulation, sequential counter.
        let olsq2_cnf = run_flat(
            &circuit,
            &graph,
            &opts,
            ModelStyle::Olsq2,
            EncodingConfig::int(),
            CardEncoding::SequentialCounter,
            t_ub,
            s_b,
        );
        // "TB-OLSQ2(CNF)": transition model, sequential counter.
        let tb_olsq2 = run_tb(
            &circuit,
            &graph,
            &opts,
            EncodingConfig::int(),
            CardEncoding::SequentialCounter,
            blocks,
            s_b,
        );
        let cells = [olsq, tb_olsq, olsq2_atmost, olsq2_cnf, tb_olsq2];
        print!("{:<11}", format!("{}/{}", n, circuit.num_gates()));
        for (i, cell) in cells.iter().enumerate() {
            print!(" {:>10}{:>4}", cell, ratio(&cells[0], cell).trim_start());
            per_config_pairs[i].push((cells[0].clone(), cell.clone()));
        }
        println!();
    }
    println!("\nAverage speedup over OLSQ (geomean):");
    for (i, h) in headers.iter().enumerate() {
        println!("  {:<15} {}", h, geomean_ratio(&per_config_pairs[i]));
    }
}
