//! Fig. 1 — impact of coupling-graph grid size and circuit gate count on
//! solving time: the original OLSQ formulation (a) versus OLSQ2 (b).
//!
//! Each cell builds the layout-synthesis instance for a QAOA circuit on a
//! grid with a fixed depth window and *no* SWAP bound (the satisfiable
//! feasibility instance the paper measures), and reports the build+solve
//! time per formulation.
//!
//! Both formulations use the same variable encoding (the substrate-best
//! one-hot) so the cell isolates the paper's Improvement 1 — eliminating
//! the space variables — rather than the encoding choice, which Table I
//! measures separately. (In the paper the two factors are also varied
//! separately: Fig. 1's OLSQ uses Z3 integers, its OLSQ2 uses bit-vectors,
//! and Table I decomposes the difference.)
//!
//! Quick mode: grids 3×3/4×4/5×5 × QAOA 8–12; `--full`: grids 5×5…9×9 ×
//! QAOA 10–24 with the paper's `T_UB = 21` window.

use olsq2::{EncodingConfig, FlatModel, ModelStyle, Olsq2Synthesizer, SynthesisConfig};
use olsq2_arch::grid;
use olsq2_bench::{geomean_ratio, ratio, BenchOpts, Cell};
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_sat::SolveResult;
use std::time::Instant;

fn run_style(
    circuit: &olsq2_circuit::Circuit,
    graph: &olsq2_arch::CouplingGraph,
    opts: &BenchOpts,
    style: ModelStyle,
    encoding: EncodingConfig,
    t_ub: usize,
) -> Cell {
    let config = SynthesisConfig {
        encoding,
        swap_duration: 1,
        time_budget: Some(opts.budget),
        ..SynthesisConfig::default()
    };
    let start = Instant::now();
    let mut model = match FlatModel::build_with_style(circuit, graph, &config, t_ub, style) {
        Ok(m) => m,
        Err(e) => return Cell::Failed(e.to_string()),
    };
    model.solver_mut().set_deadline(Some(start + opts.budget));
    match model.solve(&[]) {
        SolveResult::Sat => Cell::Time(start.elapsed()),
        SolveResult::Unsat => Cell::Failed("unexpected UNSAT".into()),
        SolveResult::Unknown => Cell::Timeout,
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let _ = Olsq2Synthesizer::new(SynthesisConfig::default()); // keep the public API exercised
    let (grids, sizes, t_ub): (Vec<usize>, Vec<usize>, usize) = if opts.full {
        (vec![5, 6, 7, 8, 9], vec![10, 12, 16, 20, 24], 21)
    } else {
        (vec![3, 4, 5], vec![8, 10, 12], 12)
    };
    println!("Fig. 1 reproduction: SMT solving time, OLSQ formulation vs OLSQ2 formulation");
    println!("(QAOA phase-splitting circuits on grid devices, depth window T_UB={t_ub}, no swap bound)\n");
    println!(
        "{:<8} {:<12} {:>10} {:>10} {:>9}",
        "grid", "qubit/gate", "OLSQ", "OLSQ2", "speedup"
    );
    let mut pairs = Vec::new();
    for &g in &grids {
        let graph = grid(g, g);
        for &n in &sizes {
            if n > graph.num_qubits() {
                continue;
            }
            let circuit = qaoa_circuit(n, opts.seed);
            let baseline = run_style(
                &circuit,
                &graph,
                &opts,
                ModelStyle::OlsqBaseline,
                EncodingConfig::int(),
                t_ub,
            );
            let ours = run_style(
                &circuit,
                &graph,
                &opts,
                ModelStyle::Olsq2,
                EncodingConfig::int(),
                t_ub,
            );
            println!(
                "{:<8} {:<12} {:>10} {:>10} {:>9}",
                format!("{g}x{g}"),
                format!("{}/{}", n, circuit.num_gates()),
                baseline,
                ours,
                ratio(&baseline, &ours)
            );
            pairs.push((baseline, ours));
        }
    }
    println!(
        "\naverage speedup (geomean over solved pairs): {}",
        geomean_ratio(&pairs)
    );
}
