//! Table IV — SWAP-count comparison of SABRE, the SATMap-style slice
//! mapper, and TB-OLSQ2. Following the paper's convention, zero-SWAP
//! results count as 1 when computing average ratios.

use olsq2::{SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::{aspen4, sycamore54, CouplingGraph};
use olsq2_bench::BenchOpts;
use olsq2_circuit::generators::{
    barenco_tof_circuit, ising_circuit, qaoa_circuit, qft_decomposed, queko_circuit, tof_circuit,
};
use olsq2_circuit::Circuit;
use olsq2_heuristic::{sabre_route, satmap_route, SabreConfig, SatMapConfig, SatMapError};
use olsq2_layout::verify;

struct Row {
    device: &'static str,
    circuit: Circuit,
    swap_duration: usize,
}

fn main() {
    let opts = BenchOpts::from_args();
    let sycamore = sycamore54();
    let aspen = aspen4();

    let mut rows: Vec<Row> = Vec::new();
    let queko = |graph: &CouplingGraph, device, depth: usize, gates, seed| {
        let q = queko_circuit(graph.num_qubits(), graph.edges(), depth, gates, seed);
        Row {
            device,
            circuit: q.circuit,
            swap_duration: 3,
        }
    };
    if opts.full {
        for c in [
            qft_decomposed(8),
            tof_circuit(4),
            barenco_tof_circuit(4),
            tof_circuit(5),
            barenco_tof_circuit(5),
            ising_circuit(10, 25),
        ] {
            rows.push(Row {
                device: "sycamore",
                circuit: c,
                swap_duration: 3,
            });
        }
        for n in [16usize, 20, 24, 28] {
            rows.push(Row {
                device: "sycamore",
                circuit: qaoa_circuit(n, opts.seed),
                swap_duration: 1,
            });
        }
        for (d, g) in [(5usize, 192usize), (15, 576)] {
            rows.push(queko(&sycamore, "sycamore", d, g, opts.seed + d as u64));
        }
        for (d, g) in [
            (5usize, 37usize),
            (15, 109),
            (25, 180),
            (35, 253),
            (45, 324),
        ] {
            rows.push(queko(&aspen, "aspen-4", d, g, opts.seed + d as u64));
        }
    } else {
        rows.push(Row {
            device: "sycamore",
            circuit: tof_circuit(4),
            swap_duration: 3,
        });
        for n in [8usize, 12] {
            rows.push(Row {
                device: "sycamore",
                circuit: qaoa_circuit(n, opts.seed),
                swap_duration: 1,
            });
        }
        for (d, g) in [(5usize, 37usize), (10, 73)] {
            rows.push(queko(&aspen, "aspen-4", d, g, opts.seed + d as u64));
        }
    }

    println!(
        "Table IV reproduction: SWAP optimization, SABRE vs SATMap* vs TB-OLSQ2 (budget {:?}/row)\n",
        opts.budget
    );
    println!(
        "{:<10} {:<22} {:>6} {:>8} {:>9}  note",
        "device", "benchmark", "SABRE", "SATMap*", "TB-OLSQ2"
    );
    let mut sabre_ratios: Vec<f64> = Vec::new();
    let mut satmap_ratios: Vec<f64> = Vec::new();
    for row in rows {
        let graph: &CouplingGraph = if row.device == "sycamore" {
            &sycamore
        } else {
            &aspen
        };
        let sabre_cfg = SabreConfig {
            swap_duration: row.swap_duration,
            seed: opts.seed,
            ..Default::default()
        };
        let sabre = sabre_route(&row.circuit, graph, &sabre_cfg).ok();
        if let Some(r) = &sabre {
            assert_eq!(verify(&row.circuit, graph, r), Ok(()), "SABRE invalid");
        }

        let sm_cfg = SatMapConfig {
            swap_duration: row.swap_duration,
            time_budget: Some(opts.budget),
            ..Default::default()
        };
        let satmap = satmap_route(&row.circuit, graph, &sm_cfg);
        let satmap_text = match &satmap {
            Ok(out) => {
                assert_eq!(
                    verify(&row.circuit, graph, &out.result),
                    Ok(()),
                    "SATMap invalid"
                );
                out.result.swap_count().to_string()
            }
            Err(SatMapError::Timeout) => "TO".into(),
            Err(_) => "ERR".into(),
        };

        let mut cfg = SynthesisConfig::with_swap_duration(row.swap_duration);
        cfg.time_budget = Some(opts.budget);
        let synth = TbOlsq2Synthesizer::new(cfg);
        let tb = synth.optimize_swaps(&row.circuit, graph);
        let (tb_text, note, tb_count) = match &tb {
            Ok(out) => {
                assert_eq!(
                    verify(&row.circuit, graph, &out.outcome.result),
                    Ok(()),
                    "TB-OLSQ2 invalid"
                );
                (
                    out.outcome.result.swap_count().to_string(),
                    if out.outcome.proven_optimal {
                        "optimal"
                    } else {
                        "budget"
                    },
                    Some(out.outcome.result.swap_count()),
                )
            }
            Err(olsq2::SynthesisError::BudgetExhausted) => ("TO".into(), "", None),
            Err(_) => ("ERR".into(), "", None),
        };

        if let Some(t) = tb_count {
            let denom = t.max(1) as f64;
            if let Some(s) = &sabre {
                sabre_ratios.push(s.swap_count().max(1) as f64 / denom);
            }
            if let Ok(out) = &satmap {
                satmap_ratios.push(out.result.swap_count().max(1) as f64 / denom);
            }
        }
        println!(
            "{:<10} {:<22} {:>6} {:>8} {:>9}  {}",
            row.device,
            row.circuit.name(),
            sabre
                .as_ref()
                .map(|r| r.swap_count().to_string())
                .unwrap_or("ERR".into()),
            satmap_text,
            tb_text,
            note
        );
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            "-".to_string()
        } else {
            format!("{:.2}x", v.iter().sum::<f64>() / v.len() as f64)
        }
    };
    println!("\naverage swap ratio vs TB-OLSQ2 (0 counted as 1, as in the paper):");
    println!("  SABRE   {}", avg(&sabre_ratios));
    println!("  SATMap* {}", avg(&satmap_ratios));
}
