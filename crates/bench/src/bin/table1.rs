//! Table I — runtime comparison of the six encoding configurations:
//! OLSQ(int), OLSQ(bv), OLSQ2(int), OLSQ2(EUF+int), OLSQ2(EUF+bv),
//! OLSQ2(bv). Instances are satisfiable QAOA feasibility problems on grid
//! devices with a fixed depth window and unconstrained SWAP count,
//! mirroring the paper's §IV-A setup (theirs: 7×7/8×8 grids, T_UB=21).

use olsq2::{EncodingConfig, FlatModel, ModelStyle, SynthesisConfig};
use olsq2_arch::grid;
use olsq2_bench::{geomean_ratio, ratio, BenchOpts, Cell};
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_sat::SolveResult;
use std::time::Instant;

type ConfigRow = (&'static str, ModelStyle, fn() -> EncodingConfig);

const CONFIGS: [ConfigRow; 6] = [
    ("OLSQ(int)", ModelStyle::OlsqBaseline, EncodingConfig::int),
    ("OLSQ(bv)", ModelStyle::OlsqBaseline, EncodingConfig::bv),
    ("OLSQ2(int)", ModelStyle::Olsq2, EncodingConfig::int),
    ("OLSQ2(EUF+int)", ModelStyle::Olsq2, EncodingConfig::euf_int),
    ("OLSQ2(EUF+bv)", ModelStyle::Olsq2, EncodingConfig::euf_bv),
    ("OLSQ2(bv)", ModelStyle::Olsq2, EncodingConfig::bv),
];

fn run(
    circuit: &olsq2_circuit::Circuit,
    graph: &olsq2_arch::CouplingGraph,
    opts: &BenchOpts,
    style: ModelStyle,
    encoding: EncodingConfig,
    t_ub: usize,
) -> (Cell, usize, usize) {
    let config = SynthesisConfig {
        encoding,
        swap_duration: 1,
        time_budget: Some(opts.budget),
        ..SynthesisConfig::default()
    };
    let start = Instant::now();
    let mut model = match FlatModel::build_with_style(circuit, graph, &config, t_ub, style) {
        Ok(m) => m,
        Err(e) => return (Cell::Failed(e.to_string()), 0, 0),
    };
    let (vars, clauses) = model.formula_size();
    model.solver_mut().set_deadline(Some(start + opts.budget));
    let cell = match model.solve(&[]) {
        SolveResult::Sat => Cell::Time(start.elapsed()),
        SolveResult::Unsat => Cell::Failed("unexpected UNSAT".into()),
        SolveResult::Unknown => Cell::Timeout,
    };
    (cell, vars, clauses)
}

fn main() {
    let opts = BenchOpts::from_args();
    let (grids, sizes, t_ub): (Vec<usize>, Vec<usize>, usize) = if opts.full {
        (vec![7, 8], vec![16, 18, 20, 22, 24], 21)
    } else {
        (vec![4, 5], vec![8, 10, 12], 12)
    };
    println!("Table I reproduction: encoding comparison (T_UB={t_ub}, unconstrained swaps)\n");
    print!("{:<7} {:<11}", "grid", "qubit/gate");
    for (name, _, _) in CONFIGS {
        print!(" {:>15}", name);
    }
    println!();

    let mut per_config_pairs: Vec<Vec<(Cell, Cell)>> = vec![Vec::new(); CONFIGS.len()];
    let mut size_rows: Vec<(String, Vec<(usize, usize)>)> = Vec::new();
    for &g in &grids {
        let graph = grid(g, g);
        for &n in &sizes {
            if n > graph.num_qubits() {
                continue;
            }
            let circuit = qaoa_circuit(n, opts.seed);
            let mut cells = Vec::new();
            let mut sizes_here = Vec::new();
            for (_, style, enc) in CONFIGS {
                let (cell, vars, clauses) = run(&circuit, &graph, &opts, style, enc(), t_ub);
                cells.push(cell);
                sizes_here.push((vars, clauses));
            }
            print!(
                "{:<7} {:<11}",
                format!("{g}x{g}"),
                format!("{}/{}", n, circuit.num_gates())
            );
            for (i, cell) in cells.iter().enumerate() {
                print!(" {:>10}{:>4}", cell, ratio(&cells[0], cell).trim_start());
                per_config_pairs[i].push((cells[0].clone(), cell.clone()));
            }
            println!();
            size_rows.push((format!("{g}x{g} {}/{}", n, circuit.num_gates()), sizes_here));
        }
    }
    println!("\nAverage speedup over OLSQ(int) (geomean):");
    for (i, (name, _, _)) in CONFIGS.iter().enumerate() {
        println!("  {:<15} {}", name, geomean_ratio(&per_config_pairs[i]));
    }
    // Improvement 1's structural claim: fewer variables and constraints.
    println!("\nFormula sizes (variables/clauses):");
    print!("{:<19}", "instance");
    for (name, _, _) in CONFIGS {
        print!(" {:>18}", name);
    }
    println!();
    for (label, sizes_here) in size_rows {
        print!("{:<19}", label);
        for (v, c) in sizes_here {
            print!(" {:>18}", format!("{v}/{c}"));
        }
        println!();
    }
}
