//! A/B harness for the zero-rebuild incremental encoding: extending the
//! live model in place across window growth versus rebuilding from
//! scratch at the larger window.
//!
//! Two measurements, written to `BENCH_incremental.json` at the repo root:
//!
//! * **growth-step**: the raw encode cost of one window growth — the
//!   wall-clock of `FlatModel::extend_window` versus a fresh
//!   `FlatModel::build` at the same target window, on QUEKO and QAOA
//!   instances (the verdict at the widest depth bound is cross-checked).
//! * **end-to-end**: `optimize_depth` with a deliberately tight initial
//!   window (`tub_factor = 1.0`) so phase-1 relaxation outgrows it, run
//!   with the incremental path on and off; optima must agree and the
//!   incremental runs report their extension counts.

use olsq2::{FlatModel, Olsq2Synthesizer, SynthesisConfig};
use olsq2_arch::{grid, line, CouplingGraph};
use olsq2_bench::BenchOpts;
use olsq2_circuit::generators::{qaoa_circuit, qft_decomposed, queko_circuit, tof_circuit};
use olsq2_circuit::{Circuit, DependencyGraph};
use std::fmt::Write as _;
use std::time::Instant;

struct GrowthRow {
    case: String,
    device: String,
    from_t_ub: usize,
    to_t_ub: usize,
    extend_us: u128,
    rebuild_us: u128,
    agree: bool,
}

struct EndToEndRow {
    case: String,
    device: String,
    extend_us: u128,
    rebuild_us: u128,
    extensions: usize,
    depth: usize,
    agree: bool,
}

/// One growth trajectory: extend a live model `t0 → t0+step → t0+2·step`,
/// timing each extension against a fresh build at the same target window.
fn growth_steps(
    case: &str,
    circuit: &Circuit,
    graph: &CouplingGraph,
    swap_duration: usize,
    rows: &mut Vec<GrowthRow>,
) {
    let config = SynthesisConfig::with_swap_duration(swap_duration);
    let dag = DependencyGraph::new(circuit);
    let t0 = dag.longest_chain().max(2);
    let step = (t0 / 2).max(2);
    let mut extended = match FlatModel::build(circuit, graph, &config, t0) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("skipping {case}: {e}");
            return;
        }
    };
    let mut from = t0;
    for to in [t0 + step, t0 + 2 * step] {
        let extend_start = Instant::now();
        assert!(extended.extend_window(circuit, graph, to));
        let extend_us = extend_start.elapsed().as_micros();

        let rebuild_start = Instant::now();
        let mut fresh = FlatModel::build(circuit, graph, &config, to).expect("fresh build");
        let rebuild_us = rebuild_start.elapsed().as_micros();

        // Cross-check: at the widest bound the two encodings must agree.
        let ext_act = extended.depth_bound(to);
        let fresh_act = fresh.depth_bound(to);
        let agree = extended.solve(&[ext_act]) == fresh.solve(&[fresh_act]);

        rows.push(GrowthRow {
            case: case.to_string(),
            device: graph.name().to_string(),
            from_t_ub: from,
            to_t_ub: to,
            extend_us,
            rebuild_us,
            agree,
        });
        from = to;
    }
}

fn end_to_end(
    case: &str,
    circuit: &Circuit,
    graph: &CouplingGraph,
    swap_duration: usize,
    opts: &BenchOpts,
    rows: &mut Vec<EndToEndRow>,
) {
    let mut config = SynthesisConfig::with_swap_duration(swap_duration);
    config.tub_factor = 1.0; // start tight so the window must grow
    config.time_budget = Some(opts.budget);
    let mut rebuild_config = config.clone();
    rebuild_config.incremental = false;

    let start = Instant::now();
    let inc = Olsq2Synthesizer::new(config).optimize_depth(circuit, graph);
    let extend_us = start.elapsed().as_micros();
    let start = Instant::now();
    let reb = Olsq2Synthesizer::new(rebuild_config).optimize_depth(circuit, graph);
    let rebuild_us = start.elapsed().as_micros();

    match (inc, reb) {
        (Ok(inc), Ok(reb)) => rows.push(EndToEndRow {
            case: case.to_string(),
            device: graph.name().to_string(),
            extend_us,
            rebuild_us,
            extensions: inc.extensions,
            depth: inc.result.depth,
            agree: inc.result.depth == reb.result.depth,
        }),
        (a, b) => {
            eprintln!(
                "skipping {case}: incremental={:?} rebuild={:?}",
                a.err().map(|e| e.to_string()),
                b.err().map(|e| e.to_string())
            );
        }
    }
}

fn main() {
    let opts = BenchOpts::from_args();

    let mut growth: Vec<GrowthRow> = Vec::new();
    let mut e2e: Vec<EndToEndRow> = Vec::new();

    // QUEKO quick set: known-optimal instances on small grids.
    let queko_cases: Vec<(CouplingGraph, usize, usize)> = if opts.full {
        vec![
            (grid(3, 3), 6, 24),
            (grid(4, 4), 8, 48),
            (grid(4, 4), 12, 72),
        ]
    } else {
        vec![(grid(2, 3), 3, 8), (grid(3, 3), 4, 12)]
    };
    for (graph, depth, gates) in queko_cases {
        let q = queko_circuit(graph.num_qubits(), graph.edges(), depth, gates, opts.seed);
        let case = format!("queko-{depth}x{gates}");
        growth_steps(&case, &q.circuit, &graph, 3, &mut growth);
    }

    // QAOA quick set: routing-heavy, so the window genuinely grows.
    let qaoa_cases: Vec<(usize, CouplingGraph)> = if opts.full {
        vec![(8, grid(3, 3)), (10, grid(4, 3)), (12, grid(4, 4))]
    } else {
        vec![(6, grid(2, 3)), (8, grid(3, 3))]
    };
    for (n, graph) in qaoa_cases {
        let circuit = qaoa_circuit(n, opts.seed);
        let case = format!("qaoa-{n}");
        growth_steps(&case, &circuit, &graph, 1, &mut growth);
        end_to_end(&case, &circuit, &graph, 1, &opts, &mut e2e);
    }

    // Routing-heavy circuits on line devices with 3-cycle SWAPs: the
    // optimum sits well above the tight initial window, so these runs
    // exercise the in-place growth path end to end.
    let routed_cases: Vec<(&str, Circuit, CouplingGraph)> = if opts.full {
        vec![
            ("qft-5", qft_decomposed(5), line(5)),
            ("tof-4", tof_circuit(4), line(7)),
            ("qaoa-6-line", qaoa_circuit(6, opts.seed), line(6)),
        ]
    } else {
        vec![
            ("qft-4", qft_decomposed(4), line(4)),
            ("tof-3", tof_circuit(3), line(5)),
        ]
    };
    for (case, circuit, graph) in routed_cases {
        end_to_end(case, &circuit, &graph, 3, &opts, &mut e2e);
    }

    println!("Growth-step encode cost: extend_window vs fresh build\n");
    println!(
        "{:<14} {:<10} {:>9} {:>12} {:>12} {:>8}",
        "benchmark", "device", "window", "extend", "rebuild", "speedup"
    );
    for r in &growth {
        println!(
            "{:<14} {:<10} {:>9} {:>10}us {:>10}us {:>7.1}x{}",
            r.case,
            r.device,
            format!("{}->{}", r.from_t_ub, r.to_t_ub),
            r.extend_us,
            r.rebuild_us,
            r.rebuild_us as f64 / r.extend_us.max(1) as f64,
            if r.agree { "" } else { "  VERDICT MISMATCH" },
        );
    }

    println!("\nEnd-to-end depth optimization (tight initial window)\n");
    println!(
        "{:<14} {:<10} {:>12} {:>12} {:>8} {:>6}",
        "benchmark", "device", "extend", "rebuild", "speedup", "exts"
    );
    for r in &e2e {
        println!(
            "{:<14} {:<10} {:>10}us {:>10}us {:>7.1}x {:>6}{}",
            r.case,
            r.device,
            r.extend_us,
            r.rebuild_us,
            r.rebuild_us as f64 / r.extend_us.max(1) as f64,
            r.extensions,
            if r.agree { "" } else { "  OPTIMUM MISMATCH" },
        );
    }

    let mismatches =
        growth.iter().filter(|r| !r.agree).count() + e2e.iter().filter(|r| !r.agree).count();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"harness\": \"incremental\",");
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"full\": {},", opts.full);
    let _ = writeln!(json, "  \"mismatches\": {mismatches},");
    json.push_str("  \"growth_step\": [\n");
    for (i, r) in growth.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"device\": \"{}\", \"from_t_ub\": {}, \"to_t_ub\": {}, \
             \"extend_us\": {}, \"rebuild_us\": {}, \"agree\": {}}}{}",
            r.case,
            r.device,
            r.from_t_ub,
            r.to_t_ub,
            r.extend_us,
            r.rebuild_us,
            r.agree,
            if i + 1 < growth.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"end_to_end\": [\n");
    for (i, r) in e2e.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"device\": \"{}\", \"extend_us\": {}, \"rebuild_us\": {}, \
             \"extensions\": {}, \"depth\": {}, \"agree\": {}}}{}",
            r.case,
            r.device,
            r.extend_us,
            r.rebuild_us,
            r.extensions,
            r.depth,
            r.agree,
            if i + 1 < e2e.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\nfailed to write {out}: {e}"),
    }
    assert_eq!(mismatches, 0, "extend/rebuild disagreed; see table above");
}
