//! A/B harness for the cube-and-conquer subsystem: the cube engine
//! versus a single solver versus the portfolio, written to
//! `BENCH_cube.json` at the repo root.
//!
//! Two sections:
//!
//! * **unsat** — raw UNSAT instances (pigeonhole, XOR-chain parity):
//!   `solve_cubes` over a worker pool versus one `Solver::solve` call.
//!   Each row also re-runs the cube engine in prove mode (untimed) and
//!   checks the stitched refutation.
//! * **synthesis** — `optimize_depth` end to end on routing-heavy
//!   instances: `CubeSynthesizer` versus the sequential
//!   `Olsq2Synthesizer` versus the diversified portfolio. Optima must
//!   agree across all three on every row.
//!
//! Methodology: this container is single-core, so any speedup here is
//! **total-work reduction** — lemmas retained across cubes and bounds,
//! plus assumption cores pruning sibling cubes — not parallelism.
//! Strategies are interleaved per trial (A, B, C, then again), and each
//! row reports the **median of paired per-trial ratios**, which cancels
//! drift that would bias a mean of separately-averaged times.

use olsq2::{CubeParams, CubeSynthesizer, Olsq2Synthesizer, SynthesisConfig};
use olsq2_arch::{grid, line, CouplingGraph};
use olsq2_bench::BenchOpts;
use olsq2_circuit::generators::{qaoa_circuit, qft_decomposed, tof_circuit};
use olsq2_circuit::Circuit;
use olsq2_cube::{solve_cubes, CubeConfig, SatCubeSolver, SplitGroup};
use olsq2_sat::{Lit, SolveResult, Solver, Var};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const WORKERS: usize = 4;

fn lit(v: usize) -> Lit {
    Lit::positive(Var::from_index(v))
}

/// Pigeonhole principle with `holes + 1` pigeons: UNSAT, exponentially
/// hard for resolution, and carrying natural one-hot split groups (each
/// pigeon's hole assignment).
fn pigeonhole(holes: usize) -> (usize, Vec<Vec<Lit>>, Vec<SplitGroup>) {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| lit(p * holes + h);
    let mut clauses = Vec::new();
    let mut groups = Vec::new();
    for p in 0..pigeons {
        let group: Vec<Lit> = (0..holes).map(|h| var(p, h)).collect();
        clauses.push(group.clone());
        groups.push(SplitGroup {
            family: olsq2_encode::ConstraintFamily::Mapping,
            lits: group,
        });
    }
    for h in 0..holes {
        for a in 0..pigeons {
            for b in a + 1..pigeons {
                clauses.push(vec![!var(a, h), !var(b, h)]);
            }
        }
    }
    (pigeons * holes, clauses, groups)
}

/// An odd XOR chain: x0 ⊕ x1, x1 ⊕ x2, …, x_{n-1} ⊕ x0 with an odd
/// number of inversions — UNSAT, no short resolution refutation through
/// any single variable, so splitting genuinely decomposes the search.
fn xor_chain(n: usize) -> (usize, Vec<Vec<Lit>>, Vec<SplitGroup>) {
    let mut clauses = Vec::new();
    for i in 0..n {
        let a = lit(i);
        let b = lit((i + 1) % n);
        if i == 0 {
            // a == b
            clauses.push(vec![!a, b]);
            clauses.push(vec![a, !b]);
        } else {
            // a != b
            clauses.push(vec![a, b]);
            clauses.push(vec![!a, !b]);
        }
    }
    (n, clauses, Vec::new())
}

struct UnsatRow {
    case: String,
    single_us: Vec<u128>,
    cube_us: Vec<u128>,
    cubes_split: u64,
    pruned: u64,
    proof_checked: bool,
}

struct SynthRow {
    case: String,
    device: String,
    seq_us: Vec<u128>,
    cube_us: Vec<u128>,
    portfolio_us: Vec<u128>,
    depth: usize,
    agree: bool,
}

/// Median of the per-trial paired ratios `base[i] / this[i]`.
fn median_paired_ratio(base: &[u128], this: &[u128]) -> f64 {
    let mut ratios: Vec<f64> = base
        .iter()
        .zip(this)
        .map(|(&b, &t)| b as f64 / (t.max(1)) as f64)
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let n = ratios.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        ratios[n / 2]
    } else {
        (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let logs: Vec<f64> = values
        .filter(|v| v.is_finite() && *v > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return None;
    }
    Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
}

fn unsat_case(
    case: &str,
    num_vars: usize,
    clauses: &[Vec<Lit>],
    groups: &[SplitGroup],
    trials: usize,
    rows: &mut Vec<UnsatRow>,
) {
    let cube_cfg = CubeConfig {
        workers: WORKERS,
        depth: 3,
        conflict_budget: 5_000,
        ..CubeConfig::default()
    };
    // Each worker couples to the cohort's shared clause pool, so a lemma
    // learned refuting one cube prunes the search in every other —
    // prove mode runs bare (imported clauses are unverifiable in a
    // stitched log), mirroring `CubeSynthesizer`.
    let make_worker = |i: usize, pool: Option<&Arc<olsq2::SharedClausePool>>, prove: bool| {
        use olsq2_cube::CubeSolvable as _;
        let mut w = SatCubeSolver::new(num_vars, clauses, prove);
        if let Some(pool) = pool {
            let ep = olsq2::CohortEndpoint::new(pool.clone(), i, olsq2_obs::Recorder::disabled());
            w.solver_mut().set_exchange(Some(Arc::new(ep)));
        }
        for g in groups {
            w.add_hint(g.clone());
        }
        w
    };

    let mut single_us = Vec::new();
    let mut cube_us = Vec::new();
    let mut cubes_split = 0;
    let mut pruned = 0;
    for _ in 0..trials {
        // Interleaved: single first, then cube, each trial.
        let start = Instant::now();
        let mut solver = Solver::new();
        while solver.num_vars() < num_vars {
            solver.new_var();
        }
        for c in clauses {
            solver.add_clause(c.clone());
        }
        let single = solver.solve(&[]);
        single_us.push(start.elapsed().as_micros());
        assert_eq!(single, SolveResult::Unsat, "{case}: single not UNSAT");

        let start = Instant::now();
        let pool = Arc::new(olsq2::SharedClausePool::new(WORKERS, 4096));
        let run = solve_cubes(
            |i| make_worker(i, Some(&pool), false),
            &cube_cfg,
            &olsq2_obs::Recorder::disabled(),
        );
        cube_us.push(start.elapsed().as_micros());
        assert_eq!(run.result, SolveResult::Unsat, "{case}: cube not UNSAT");
        cubes_split = run.stats.cubes_split;
        pruned = run.stats.cubes_pruned_by_core;
    }

    // Untimed prove-mode run: the stitched refutation must check.
    let prove_cfg = CubeConfig {
        prove: true,
        ..cube_cfg
    };
    let run = solve_cubes(
        |i| make_worker(i, None, true),
        &prove_cfg,
        &olsq2_obs::Recorder::disabled(),
    );
    assert_eq!(
        run.result,
        SolveResult::Unsat,
        "{case}: prove-mode not UNSAT"
    );
    let proof = run.proof.expect("prove-mode UNSAT carries a proof");
    let checked = proof.check();
    assert!(
        checked.is_ok(),
        "{case}: stitched proof rejected: {checked:?}"
    );

    rows.push(UnsatRow {
        case: case.to_string(),
        single_us,
        cube_us,
        cubes_split,
        pruned,
        proof_checked: true,
    });
}

fn synth_case(
    case: &str,
    circuit: &Circuit,
    graph: &CouplingGraph,
    swap_duration: usize,
    trials: usize,
    opts: &BenchOpts,
    rows: &mut Vec<SynthRow>,
) {
    let mut config = SynthesisConfig::with_swap_duration(swap_duration);
    config.time_budget = Some(opts.budget);
    let params = CubeParams {
        workers: WORKERS,
        ..CubeParams::default()
    };

    let mut seq_us = Vec::new();
    let mut cube_us = Vec::new();
    let mut portfolio_us = Vec::new();
    let mut depths = Vec::new();
    for _ in 0..trials {
        let start = Instant::now();
        let seq = Olsq2Synthesizer::new(config.clone())
            .optimize_depth(circuit, graph)
            .expect("sequential run");
        seq_us.push(start.elapsed().as_micros());

        let start = Instant::now();
        let cube = CubeSynthesizer::new(config.clone(), params.clone())
            .optimize_depth(circuit, graph)
            .expect("cube run");
        cube_us.push(start.elapsed().as_micros());

        let start = Instant::now();
        let pcfg = olsq2::PortfolioConfig::standard();
        let (port, _winner) = olsq2::PortfolioSynthesizer::with_config(config.clone(), &pcfg)
            .optimize_depth(circuit, graph)
            .expect("portfolio run");
        portfolio_us.push(start.elapsed().as_micros());

        assert!(seq.proven_optimal && cube.outcome.proven_optimal && port.proven_optimal);
        depths.push((
            seq.result.depth,
            cube.outcome.result.depth,
            port.result.depth,
        ));
        assert_eq!(
            olsq2_layout::verify(circuit, graph, &cube.outcome.result),
            Ok(()),
            "{case}: cube layout failed verification"
        );
    }
    let (d_seq, d_cube, d_port) = depths[0];
    let agree = depths.iter().all(|&(a, b, c)| a == b && b == c);
    rows.push(SynthRow {
        case: case.to_string(),
        device: graph.name().to_string(),
        seq_us,
        cube_us,
        portfolio_us,
        depth: d_seq,
        agree: agree && d_seq == d_cube && d_cube == d_port,
    });
}

fn main() {
    let opts = BenchOpts::from_args();
    let trials = if opts.full { 5 } else { 3 };

    let mut unsat: Vec<UnsatRow> = Vec::new();
    let mut synth: Vec<SynthRow> = Vec::new();

    // UNSAT rows: the cube engine against one solver on the same CNF.
    let php_sizes: &[usize] = if opts.full { &[7, 8, 9] } else { &[6, 7] };
    for &h in php_sizes {
        let (vars, clauses, groups) = pigeonhole(h);
        unsat_case(
            &format!("php-{h}"),
            vars,
            &clauses,
            &groups,
            trials,
            &mut unsat,
        );
    }
    let xor_sizes: &[usize] = if opts.full { &[24, 32] } else { &[16, 24] };
    for &n in xor_sizes {
        let (vars, clauses, groups) = xor_chain(n);
        unsat_case(
            &format!("xor-{n}"),
            vars,
            &clauses,
            &groups,
            trials,
            &mut unsat,
        );
    }

    // Synthesis rows: depth optimization end to end, optima enforced
    // equal across all three strategies.
    let synth_cases: Vec<(String, Circuit, CouplingGraph, usize)> = if opts.full {
        vec![
            ("qaoa-6".into(), qaoa_circuit(6, opts.seed), line(6), 1),
            ("qaoa-8".into(), qaoa_circuit(8, opts.seed), grid(3, 3), 1),
            ("qft-5".into(), qft_decomposed(5), line(5), 3),
            ("tof-4".into(), tof_circuit(4), line(7), 3),
        ]
    } else {
        vec![
            ("qaoa-4".into(), qaoa_circuit(4, opts.seed), line(4), 1),
            ("qaoa-6".into(), qaoa_circuit(6, opts.seed), grid(2, 3), 1),
            ("qft-4".into(), qft_decomposed(4), line(4), 3),
        ]
    };
    for (case, circuit, graph, sd) in &synth_cases {
        synth_case(case, circuit, graph, *sd, trials, &opts, &mut synth);
    }

    println!("UNSAT instances: cube engine vs single solver ({WORKERS} workers, {trials} paired trials)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>7} {:>7} {:>7}",
        "case", "single", "cube", "speedup", "cubes", "pruned", "proof"
    );
    for r in &unsat {
        println!(
            "{:<10} {:>10}us {:>10}us {:>8.2}x {:>7} {:>7} {:>7}",
            r.case,
            r.single_us.iter().min().expect("trials"),
            r.cube_us.iter().min().expect("trials"),
            median_paired_ratio(&r.single_us, &r.cube_us),
            r.cubes_split,
            r.pruned,
            if r.proof_checked { "ok" } else { "FAIL" },
        );
    }
    // Sub-millisecond rows measure scheduler overhead, not solving:
    // the geomean covers rows where the single solver needed ≥ 1ms.
    let timed = |r: &&UnsatRow| *r.single_us.iter().min().expect("trials") >= 1000;
    let excluded = unsat.iter().filter(|r| !timed(r)).count();
    let unsat_geomean = geomean(
        unsat
            .iter()
            .filter(timed)
            .map(|r| median_paired_ratio(&r.single_us, &r.cube_us)),
    )
    .unwrap_or(f64::NAN);
    println!(
        "\ngeomean speedup vs single solver (rows with single >= 1ms): {unsat_geomean:.2}x \
         ({excluded} sub-ms row(s) excluded)"
    );

    println!("\nDepth synthesis: cube vs sequential vs portfolio\n");
    println!(
        "{:<10} {:<9} {:>12} {:>12} {:>12} {:>9} {:>6}",
        "case", "device", "seq", "cube", "portfolio", "spd/seq", "depth"
    );
    for r in &synth {
        println!(
            "{:<10} {:<9} {:>10}us {:>10}us {:>10}us {:>8.2}x {:>6}{}",
            r.case,
            r.device,
            r.seq_us.iter().min().expect("trials"),
            r.cube_us.iter().min().expect("trials"),
            r.portfolio_us.iter().min().expect("trials"),
            median_paired_ratio(&r.seq_us, &r.cube_us),
            r.depth,
            if r.agree { "" } else { "  OPTIMUM MISMATCH" },
        );
    }

    let mismatches = synth.iter().filter(|r| !r.agree).count();

    let us_list = |xs: &[u128]| {
        let items: Vec<String> = xs.iter().map(u128::to_string).collect();
        format!("[{}]", items.join(", "))
    };
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"harness\": \"cube\",");
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"full\": {},", opts.full);
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"single_core\": true,");
    let _ = writeln!(json, "  \"mismatches\": {mismatches},");
    let _ = writeln!(
        json,
        "  \"unsat_geomean_speedup_vs_single\": {unsat_geomean:.4},"
    );
    let _ = writeln!(json, "  \"geomean_excludes_sub_ms_rows\": {excluded},");
    json.push_str("  \"unsat\": [\n");
    for (i, r) in unsat.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"single_us\": {}, \"cube_us\": {}, \
             \"median_paired_speedup\": {:.4}, \"cubes_split\": {}, \
             \"pruned_by_core\": {}, \"proof_checked\": {}}}{}",
            r.case,
            us_list(&r.single_us),
            us_list(&r.cube_us),
            median_paired_ratio(&r.single_us, &r.cube_us),
            r.cubes_split,
            r.pruned,
            r.proof_checked,
            if i + 1 < unsat.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"synthesis\": [\n");
    for (i, r) in synth.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"device\": \"{}\", \"seq_us\": {}, \"cube_us\": {}, \
             \"portfolio_us\": {}, \"median_paired_speedup_vs_seq\": {:.4}, \
             \"depth\": {}, \"agree\": {}}}{}",
            r.case,
            r.device,
            us_list(&r.seq_us),
            us_list(&r.cube_us),
            us_list(&r.portfolio_us),
            median_paired_ratio(&r.seq_us, &r.cube_us),
            r.depth,
            r.agree,
            if i + 1 < synth.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cube.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\nfailed to write {out}: {e}"),
    }
    assert_eq!(
        mismatches, 0,
        "strategies disagreed on an optimum; see table above"
    );
}
