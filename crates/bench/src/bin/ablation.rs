//! Ablation: incremental solving (the paper's Improvement 2 mechanism —
//! activation-literal bounds over one solver, learned clauses reused
//! across objective bounds) versus a fresh model per bound.
//!
//! The paper attributes part of its optimization speed to incremental
//! solving ("learned information from the previous iteration can be
//! reused"); this binary quantifies that choice on the depth-optimization
//! loop.

use olsq2::{FlatModel, Olsq2Synthesizer, SynthesisConfig};
use olsq2_arch::grid;
use olsq2_bench::{geomean_ratio, ratio, BenchOpts, Cell};
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_circuit::{Circuit, DependencyGraph};
use olsq2_sat::SolveResult;
use std::time::Instant;

/// Depth optimization re-implemented with a fresh solver per bound —
/// the same search trajectory as `Olsq2Synthesizer::optimize_depth` but no
/// clause reuse.
fn fresh_per_bound(circuit: &Circuit, graph: &olsq2_arch::CouplingGraph, opts: &BenchOpts) -> Cell {
    let start = Instant::now();
    let deadline = start + opts.budget;
    let config = SynthesisConfig::with_swap_duration(1);
    let dag = DependencyGraph::new(circuit);
    let t_lb = dag.longest_chain().max(1);
    let t_ub = ((t_lb as f64 * 1.5).ceil() as usize).max(t_lb + 1);

    let solve_at = |bound: usize| -> Option<SolveResult> {
        let mut model = FlatModel::build(circuit, graph, &config, t_ub.max(bound)).ok()?;
        let act = model.depth_bound(bound);
        model.solver_mut().set_deadline(Some(deadline));
        Some(model.solve(&[act]))
    };

    // Phase 1: geometric relaxation.
    let mut t_b = t_lb;
    loop {
        match solve_at(t_b) {
            Some(SolveResult::Sat) => break,
            Some(SolveResult::Unsat) => {
                let r = if t_b < 100 { 1.3 } else { 1.1 };
                t_b = ((t_b as f64 * r).ceil() as usize).max(t_b + 1);
            }
            _ => return Cell::Timeout,
        }
    }
    // Phase 2: decrement.
    while t_b > t_lb {
        match solve_at(t_b - 1) {
            Some(SolveResult::Sat) => t_b -= 1,
            Some(SolveResult::Unsat) => break,
            _ => return Cell::Timeout,
        }
    }
    Cell::Time(start.elapsed())
}

fn incremental(circuit: &Circuit, graph: &olsq2_arch::CouplingGraph, opts: &BenchOpts) -> Cell {
    let mut config = SynthesisConfig::with_swap_duration(1);
    config.time_budget = Some(opts.budget);
    let synth = Olsq2Synthesizer::new(config);
    let start = Instant::now();
    match synth.optimize_depth(circuit, graph) {
        Ok(_) => Cell::Time(start.elapsed()),
        Err(olsq2::SynthesisError::BudgetExhausted) => Cell::Timeout,
        Err(e) => Cell::Failed(e.to_string()),
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let cases: Vec<(usize, usize)> = if opts.full {
        vec![(8, 4), (10, 4), (12, 4), (14, 4), (16, 5)]
    } else {
        vec![(8, 3), (8, 4), (10, 4), (12, 4)]
    };
    println!("Ablation: incremental (activation literals) vs fresh-solver-per-bound");
    println!("(depth optimization on QAOA circuits)\n");
    println!(
        "{:<12} {:<8} {:>10} {:>12} {:>9}",
        "benchmark", "device", "fresh", "incremental", "speedup"
    );
    let mut pairs = Vec::new();
    for (n, g) in cases {
        let circuit = qaoa_circuit(n, opts.seed);
        let graph = grid(g, g);
        let fresh = fresh_per_bound(&circuit, &graph, &opts);
        let inc = incremental(&circuit, &graph, &opts);
        println!(
            "{:<12} {:<8} {:>10} {:>12} {:>9}",
            circuit.name(),
            graph.name(),
            fresh,
            inc,
            ratio(&fresh, &inc)
        );
        pairs.push((fresh, inc));
    }
    println!(
        "\naverage speedup from incremental solving: {}",
        geomean_ratio(&pairs)
    );
}
