//! Table III — depth-optimization comparison between SABRE and OLSQ2 on
//! device topologies (Sycamore, Aspen-4, Eagle in `--full` mode).
//!
//! For each benchmark the harness reports SABRE's resulting depth, OLSQ2's
//! optimized depth (with an optimality marker), and the ratio. QUEKO rows
//! additionally check OLSQ2 against the known-optimal depth, reproducing
//! the paper's §IV-C optimality claim.

use olsq2::{Olsq2Synthesizer, SynthesisConfig, SynthesisError};
use olsq2_arch::{aspen4, eagle127, sycamore54, CouplingGraph};
use olsq2_bench::BenchOpts;
use olsq2_circuit::generators::{
    barenco_tof_circuit, qaoa_circuit, qft_decomposed, queko_circuit, tof_circuit,
};
use olsq2_circuit::Circuit;
use olsq2_heuristic::{sabre_route, SabreConfig};
use olsq2_layout::verify;

struct Row {
    device: &'static str,
    circuit: Circuit,
    swap_duration: usize,
    known_optimal_depth: Option<usize>,
}

fn queko_row(
    device: &'static str,
    graph: &CouplingGraph,
    depth: usize,
    gates: usize,
    seed: u64,
) -> Row {
    let q = queko_circuit(graph.num_qubits(), graph.edges(), depth, gates, seed);
    Row {
        device,
        circuit: q.circuit,
        swap_duration: 3,
        known_optimal_depth: Some(q.optimal_depth),
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let sycamore = sycamore54();
    let aspen = aspen4();
    let eagle = eagle127();

    let mut rows: Vec<Row> = Vec::new();
    if opts.full {
        for c in [
            qft_decomposed(8),
            tof_circuit(4),
            barenco_tof_circuit(4),
            tof_circuit(5),
            barenco_tof_circuit(5),
        ] {
            rows.push(Row {
                device: "sycamore",
                circuit: c,
                swap_duration: 3,
                known_optimal_depth: None,
            });
        }
        for n in [16usize, 20, 24, 28] {
            rows.push(Row {
                device: "sycamore",
                circuit: qaoa_circuit(n, opts.seed),
                swap_duration: 1,
                known_optimal_depth: None,
            });
        }
        for (d, g) in [(5usize, 192usize), (15, 576), (25, 959)] {
            rows.push(queko_row("sycamore", &sycamore, d, g, opts.seed + d as u64));
        }
        for (d, g) in [
            (5usize, 37usize),
            (15, 109),
            (25, 180),
            (35, 253),
            (45, 324),
        ] {
            rows.push(queko_row("aspen-4", &aspen, d, g, opts.seed + d as u64));
        }
        for n in [16usize, 20] {
            rows.push(Row {
                device: "eagle",
                circuit: qaoa_circuit(n, opts.seed),
                swap_duration: 1,
                known_optimal_depth: None,
            });
        }
    } else {
        rows.push(Row {
            device: "sycamore",
            circuit: tof_circuit(4),
            swap_duration: 3,
            known_optimal_depth: None,
        });
        for n in [8usize, 12] {
            rows.push(Row {
                device: "sycamore",
                circuit: qaoa_circuit(n, opts.seed),
                swap_duration: 1,
                known_optimal_depth: None,
            });
        }
        for (d, g) in [(5usize, 37usize), (10, 73), (15, 109)] {
            rows.push(queko_row("aspen-4", &aspen, d, g, opts.seed + d as u64));
        }
        rows.push(queko_row("sycamore", &sycamore, 5, 192, opts.seed));
    }

    println!(
        "Table III reproduction: depth optimization, SABRE vs OLSQ2 (budget {:?}/row)\n",
        opts.budget
    );
    println!(
        "{:<10} {:<22} {:>6} {:>8} {:>7}  note",
        "device", "benchmark", "SABRE", "OLSQ2", "ratio"
    );
    let mut ratios: Vec<f64> = Vec::new();
    for row in rows {
        let graph: &CouplingGraph = match row.device {
            "sycamore" => &sycamore,
            "aspen-4" => &aspen,
            _ => &eagle,
        };
        let sabre_cfg = SabreConfig {
            swap_duration: row.swap_duration,
            seed: opts.seed,
            ..Default::default()
        };
        let sabre = match sabre_route(&row.circuit, graph, &sabre_cfg) {
            Ok(r) => {
                assert_eq!(
                    verify(&row.circuit, graph, &r),
                    Ok(()),
                    "SABRE result invalid"
                );
                Some(r)
            }
            Err(_) => None,
        };
        let mut cfg = SynthesisConfig::with_swap_duration(row.swap_duration);
        cfg.time_budget = Some(opts.budget);
        let synth = Olsq2Synthesizer::new(cfg);
        let olsq2 = synth.optimize_depth(&row.circuit, graph);
        let (olsq2_text, note, olsq2_depth) = match &olsq2 {
            Ok(out) => {
                assert_eq!(
                    verify(&row.circuit, graph, &out.result),
                    Ok(()),
                    "OLSQ2 result invalid"
                );
                let mut note = if out.proven_optimal {
                    "optimal".to_string()
                } else {
                    "budget".to_string()
                };
                if let Some(known) = row.known_optimal_depth {
                    if out.result.depth == known {
                        note.push_str(", matches QUEKO optimum");
                    } else {
                        note.push_str(&format!(", QUEKO optimum {known}"));
                    }
                }
                (
                    format!("{}", out.result.depth),
                    note,
                    Some(out.result.depth),
                )
            }
            Err(SynthesisError::BudgetExhausted) => ("TO".into(), String::new(), None),
            Err(e) => (format!("{e}"), String::new(), None),
        };
        let sabre_text = sabre
            .as_ref()
            .map(|r| r.depth.to_string())
            .unwrap_or_else(|| "ERR".into());
        let ratio_text = match (&sabre, olsq2_depth) {
            (Some(s), Some(d)) if d > 0 => {
                let r = s.depth as f64 / d as f64;
                ratios.push(r);
                format!("{r:.2}x")
            }
            _ => "-".into(),
        };
        println!(
            "{:<10} {:<22} {:>6} {:>8} {:>7}  {}",
            row.device,
            row.circuit.name(),
            sabre_text,
            olsq2_text,
            ratio_text,
            note
        );
    }
    if !ratios.is_empty() {
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("\naverage depth ratio (SABRE / OLSQ2): {avg:.2}x");
    }
}
