//! A/B harness for encode-once cohort forking: spawning a solver cohort
//! as one template encode plus O(memcpy) [`FlatModel::fork`]s versus
//! paying a full encode per member.
//!
//! Three measurements, written to `BENCH_fork.json` at the repo root:
//!
//! * **cohort-spawn**: wall-clock to stand up an 8-member cohort —
//!   encode-once + 7 forks versus 8 independent encodes — plus the
//!   median single-member fork latency, on QUEKO and QAOA instances.
//!   The template's and a fork's verdict at the widest depth bound are
//!   cross-checked against a freshly encoded member.
//! * **time-to-first-conflict**: per-path total of spawn cost plus the
//!   time for each member to reach its first conflict (conflict budget
//!   of one at an infeasible depth bound) — the latency until a cohort
//!   member starts contributing learned clauses.
//! * **end-to-end**: diversified same-encoding sharing portfolio
//!   (`optimize_depth`) with `fork_spawn` on versus off; optima must
//!   agree.
//!
//! The harness exits non-zero when any verdict/optimum mismatches or
//! when the geomean cohort-spawn speedup falls below 3× (the JSON is
//! written first either way).

use olsq2::{
    EncodingConfig, FlatModel, PortfolioConfig, PortfolioSynthesizer, SolverDiversification,
    SynthesisConfig,
};
use olsq2_arch::{grid, CouplingGraph};
use olsq2_bench::BenchOpts;
use olsq2_circuit::generators::{qaoa_circuit, queko_circuit};
use olsq2_circuit::{Circuit, DependencyGraph};
use olsq2_sat::SolveResult;
use std::fmt::Write as _;
use std::time::Instant;

const COHORT: usize = 8;
const DIVERSIFY_SEED: u64 = 0xF04B;
/// Spawn timings are medians over this many repetitions — single-shot
/// spawn costs are a few hundred microseconds and allocator/page-cache
/// noise at that scale swings a lone sample by 2x.
const SPAWN_REPS: usize = 5;

fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct SpawnRow {
    case: String,
    device: String,
    members: usize,
    /// Template encode (the one encode the fork path pays).
    encode_us: u128,
    /// Median single-member fork latency.
    fork_member_us: u128,
    /// Encode-once + (n−1) forks, total.
    fork_spawn_us: u128,
    /// n independent encodes, total.
    fresh_spawn_us: u128,
    /// Spawn + first-conflict, summed over the forked cohort.
    fork_ttfc_us: u128,
    /// Spawn + first-conflict, summed over the fresh cohort.
    fresh_ttfc_us: u128,
    agree: bool,
}

struct EndToEndRow {
    case: String,
    device: String,
    fork_us: u128,
    fresh_us: u128,
    depth: usize,
    agree: bool,
}

fn member_config(base: &SynthesisConfig, index: usize) -> SynthesisConfig {
    let mut cfg = base.clone();
    cfg.diversification = SolverDiversification::variant(DIVERSIFY_SEED, index);
    cfg
}

/// Time for `member` to hit its first conflict at an infeasible bound.
fn first_conflict_us(member: &mut FlatModel) -> u128 {
    let start = Instant::now();
    member.solver_mut().set_conflict_budget(Some(1));
    let act = member.depth_bound(1);
    let res = member.solve(&[act]);
    member.solver_mut().set_conflict_budget(None);
    assert_ne!(res, SolveResult::Sat, "depth bound 1 must not be feasible");
    start.elapsed().as_micros()
}

fn cohort_spawn(
    case: &str,
    circuit: &Circuit,
    graph: &CouplingGraph,
    swap_duration: usize,
    rows: &mut Vec<SpawnRow>,
) {
    let base = SynthesisConfig::with_swap_duration(swap_duration);
    let t_ub = DependencyGraph::new(circuit).longest_chain().max(1) + 2;

    // Both spawn paths are repeated and reported as medians; the last
    // repetition's cohorts carry on into the first-conflict and verdict
    // phases.
    let mut encode_samples = Vec::with_capacity(SPAWN_REPS);
    let mut fork_spawn_samples = Vec::with_capacity(SPAWN_REPS);
    let mut fresh_spawn_samples = Vec::with_capacity(SPAWN_REPS);
    let mut fork_lat: Vec<u128> = Vec::with_capacity(SPAWN_REPS * (COHORT - 1));
    let mut cohorts = None;
    for _ in 0..SPAWN_REPS {
        // Fork path: one encode, then COHORT−1 forks off the template.
        let fork_start = Instant::now();
        let mut template = match FlatModel::build(circuit, graph, &member_config(&base, 0), t_ub) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("skipping {case}: {e}");
                return;
            }
        };
        encode_samples.push(fork_start.elapsed().as_micros());
        let mut forked: Vec<FlatModel> = Vec::with_capacity(COHORT - 1);
        for i in 1..COHORT {
            let t = Instant::now();
            forked.push(template.fork(&member_config(&base, i)));
            fork_lat.push(t.elapsed().as_micros());
        }
        fork_spawn_samples.push(fork_start.elapsed().as_micros());

        // Fresh path: every member pays a full encode.
        let fresh_start = Instant::now();
        let fresh: Vec<FlatModel> = (0..COHORT)
            .map(|i| {
                FlatModel::build(circuit, graph, &member_config(&base, i), t_ub)
                    .expect("fresh build succeeds where the template did")
            })
            .collect();
        fresh_spawn_samples.push(fresh_start.elapsed().as_micros());
        cohorts = Some((template, forked, fresh));
    }
    let encode_us = median(&mut encode_samples);
    let fork_spawn_us = median(&mut fork_spawn_samples);
    let fresh_spawn_us = median(&mut fresh_spawn_samples);
    let fork_member_us = median(&mut fork_lat);
    let (mut template, mut forked, mut fresh) = cohorts.expect("SPAWN_REPS > 0");

    // Time-to-first-conflict, spawn included, summed over each cohort:
    // every member reaches its first conflict at an infeasible bound.
    let mut fork_ttfc_us = fork_spawn_us + first_conflict_us(&mut template);
    for m in forked.iter_mut() {
        fork_ttfc_us += first_conflict_us(m);
    }
    let mut fresh_ttfc_us = fresh_spawn_us;
    for m in fresh.iter_mut() {
        fresh_ttfc_us += first_conflict_us(m);
    }

    // Verdict cross-check at the widest bound: template, a fork, and a
    // freshly encoded member must agree.
    let acts = (
        template.depth_bound(t_ub),
        forked[0].depth_bound(t_ub),
        fresh[0].depth_bound(t_ub),
    );
    let reference = fresh[0].solve(&[acts.2]);
    let agree = template.solve(&[acts.0]) == reference && forked[0].solve(&[acts.1]) == reference;

    rows.push(SpawnRow {
        case: case.to_string(),
        device: graph.name().to_string(),
        members: COHORT,
        encode_us,
        fork_member_us,
        fork_spawn_us,
        fresh_spawn_us,
        fork_ttfc_us,
        fresh_ttfc_us,
        agree,
    });
}

fn end_to_end(
    case: &str,
    circuit: &Circuit,
    graph: &CouplingGraph,
    swap_duration: usize,
    opts: &BenchOpts,
    rows: &mut Vec<EndToEndRow>,
) {
    let mut base = SynthesisConfig::with_swap_duration(swap_duration);
    base.time_budget = Some(opts.budget);
    let mut fresh_base = base.clone();
    fresh_base.fork_spawn = false;
    let cfg = PortfolioConfig::standard()
        .with_encodings(vec![EncodingConfig::int()])
        .diversify(4)
        .with_sharing()
        .with_seed(opts.seed);

    let start = Instant::now();
    let forked = PortfolioSynthesizer::with_config(base, &cfg).optimize_depth(circuit, graph);
    let fork_us = start.elapsed().as_micros();
    let start = Instant::now();
    let fresh = PortfolioSynthesizer::with_config(fresh_base, &cfg).optimize_depth(circuit, graph);
    let fresh_us = start.elapsed().as_micros();

    match (forked, fresh) {
        (Ok(forked), Ok(fresh)) => rows.push(EndToEndRow {
            case: case.to_string(),
            device: graph.name().to_string(),
            fork_us,
            fresh_us,
            depth: forked.0.result.depth,
            agree: forked.0.result.depth == fresh.0.result.depth,
        }),
        (a, b) => {
            eprintln!(
                "skipping {case}: fork={:?} fresh={:?}",
                a.err().map(|e| e.to_string()),
                b.err().map(|e| e.to_string())
            );
        }
    }
}

fn main() {
    let opts = BenchOpts::from_args();

    let mut spawn: Vec<SpawnRow> = Vec::new();
    let mut e2e: Vec<EndToEndRow> = Vec::new();

    let queko_cases: Vec<(CouplingGraph, usize, usize)> = if opts.full {
        vec![
            (grid(3, 3), 6, 24),
            (grid(4, 4), 8, 48),
            (grid(4, 4), 12, 72),
        ]
    } else {
        vec![(grid(2, 3), 3, 8), (grid(3, 3), 4, 12)]
    };
    for (graph, depth, gates) in queko_cases {
        let q = queko_circuit(graph.num_qubits(), graph.edges(), depth, gates, opts.seed);
        let case = format!("queko-{depth}x{gates}");
        cohort_spawn(&case, &q.circuit, &graph, 3, &mut spawn);
        end_to_end(&case, &q.circuit, &graph, 3, &opts, &mut e2e);
    }

    let qaoa_cases: Vec<(usize, CouplingGraph)> = if opts.full {
        vec![(8, grid(3, 3)), (10, grid(4, 3)), (12, grid(4, 4))]
    } else {
        vec![(6, grid(2, 3)), (8, grid(3, 3))]
    };
    for (n, graph) in qaoa_cases {
        let circuit = qaoa_circuit(n, opts.seed);
        let case = format!("qaoa-{n}");
        cohort_spawn(&case, &circuit, &graph, 1, &mut spawn);
        end_to_end(&case, &circuit, &graph, 1, &opts, &mut e2e);
    }

    println!(
        "Cohort spawn: encode-once + {} forks vs {COHORT} encodes\n",
        COHORT - 1
    );
    println!(
        "{:<14} {:<10} {:>10} {:>10} {:>11} {:>11} {:>8}",
        "benchmark", "device", "encode", "fork/mem", "fork-spawn", "fresh", "speedup"
    );
    for r in &spawn {
        println!(
            "{:<14} {:<10} {:>8}us {:>8}us {:>9}us {:>9}us {:>7.1}x{}",
            r.case,
            r.device,
            r.encode_us,
            r.fork_member_us,
            r.fork_spawn_us,
            r.fresh_spawn_us,
            r.fresh_spawn_us as f64 / r.fork_spawn_us.max(1) as f64,
            if r.agree { "" } else { "  VERDICT MISMATCH" },
        );
    }

    println!("\nTime to first conflict, whole cohort (spawn included)\n");
    println!(
        "{:<14} {:<10} {:>12} {:>12} {:>8}",
        "benchmark", "device", "forked", "fresh", "speedup"
    );
    for r in &spawn {
        println!(
            "{:<14} {:<10} {:>10}us {:>10}us {:>7.1}x",
            r.case,
            r.device,
            r.fork_ttfc_us,
            r.fresh_ttfc_us,
            r.fresh_ttfc_us as f64 / r.fork_ttfc_us.max(1) as f64,
        );
    }

    println!("\nEnd-to-end sharing portfolio (diversify 4), fork_spawn on vs off\n");
    println!(
        "{:<14} {:<10} {:>12} {:>12} {:>8} {:>6}",
        "benchmark", "device", "fork", "fresh", "speedup", "depth"
    );
    for r in &e2e {
        println!(
            "{:<14} {:<10} {:>10}us {:>10}us {:>7.2}x {:>6}{}",
            r.case,
            r.device,
            r.fork_us,
            r.fresh_us,
            r.fresh_us as f64 / r.fork_us.max(1) as f64,
            r.depth,
            if r.agree { "" } else { "  OPTIMUM MISMATCH" },
        );
    }

    let mismatches =
        spawn.iter().filter(|r| !r.agree).count() + e2e.iter().filter(|r| !r.agree).count();
    let spawn_geomean = if spawn.is_empty() {
        0.0
    } else {
        (spawn
            .iter()
            .map(|r| (r.fresh_spawn_us as f64 / r.fork_spawn_us.max(1) as f64).ln())
            .sum::<f64>()
            / spawn.len() as f64)
            .exp()
    };
    println!("\ncohort-spawn geomean speedup: {spawn_geomean:.1}x");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"harness\": \"fork\",");
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"full\": {},", opts.full);
    let _ = writeln!(json, "  \"cohort\": {COHORT},");
    let _ = writeln!(json, "  \"mismatches\": {mismatches},");
    let _ = writeln!(json, "  \"spawn_geomean\": {spawn_geomean:.4},");
    json.push_str("  \"cohort_spawn\": [\n");
    for (i, r) in spawn.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"device\": \"{}\", \"members\": {}, \"encode_us\": {}, \
             \"fork_member_us\": {}, \"fork_spawn_us\": {}, \"fresh_spawn_us\": {}, \
             \"fork_ttfc_us\": {}, \"fresh_ttfc_us\": {}, \"agree\": {}}}{}",
            r.case,
            r.device,
            r.members,
            r.encode_us,
            r.fork_member_us,
            r.fork_spawn_us,
            r.fresh_spawn_us,
            r.fork_ttfc_us,
            r.fresh_ttfc_us,
            r.agree,
            if i + 1 < spawn.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"end_to_end\": [\n");
    for (i, r) in e2e.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"device\": \"{}\", \"fork_us\": {}, \"fresh_us\": {}, \
             \"depth\": {}, \"agree\": {}}}{}",
            r.case,
            r.device,
            r.fork_us,
            r.fresh_us,
            r.depth,
            r.agree,
            if i + 1 < e2e.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fork.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\nfailed to write {out}: {e}"),
    }
    assert_eq!(mismatches, 0, "fork/fresh disagreed; see tables above");
    let gate = opts.gate.unwrap_or(3.0);
    assert!(
        spawn_geomean >= gate,
        "cohort-spawn geomean {spawn_geomean:.2}x fell below the {gate:.2}x gate"
    );
}
