//! Micro-benchmarks backing the paper's performance claims at
//! laptop-friendly sizes, on a dependency-free timing harness (the
//! offline build environment has no criterion):
//!
//! * `encoding/*` — Table I in miniature: time-to-solution of the
//!   OLSQ(int) baseline vs OLSQ2(bv) on the same QAOA feasibility instance;
//! * `cardinality/*` — Table II in miniature: sequential counter vs
//!   totalizer vs adder network on a popcount-bounding task;
//! * `sabre` and `satmap` — heuristic baseline throughput;
//! * `solver/pigeonhole` — raw CDCL performance on a classic UNSAT family.
//!
//! Run with `cargo bench -p olsq2-bench`. Each benchmark reports the
//! minimum, median, and mean wall-clock time over a fixed number of
//! iterations after one warm-up run.

// Pigeonhole generators index holes/pigeons directly.
#![allow(clippy::needless_range_loop)]
use olsq2::{
    EncodingConfig, FlatModel, ModelStyle, Olsq2Synthesizer, Recorder, SynthesisConfig,
    TbOlsq2Synthesizer,
};
use olsq2_arch::grid;
use olsq2_bench as _;
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_encode::{CardEncoding, CardinalityNetwork};
use olsq2_heuristic::{sabre_route, satmap_route, SabreConfig, SatMapConfig};
use olsq2_sat::{Lit, SolveResult, Solver, Var};
use std::time::{Duration, Instant};

/// Times `f` over `iters` iterations (plus one warm-up) and prints
/// min/median/mean.
fn bench(name: &str, iters: usize, mut f: impl FnMut()) {
    f(); // warm-up
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} min {min:>10.2?}  median {median:>10.2?}  mean {mean:>10.2?}  ({iters} iters)"
    );
}

fn encoding_benches() {
    let circuit = qaoa_circuit(8, 3);
    let graph = grid(3, 3);
    for (name, style, enc) in [
        ("olsq_int", ModelStyle::OlsqBaseline, EncodingConfig::int()),
        ("olsq2_int", ModelStyle::Olsq2, EncodingConfig::int()),
        (
            "olsq2_euf_int",
            ModelStyle::Olsq2,
            EncodingConfig::euf_int(),
        ),
        ("olsq2_bv", ModelStyle::Olsq2, EncodingConfig::bv()),
    ] {
        bench(&format!("encoding/{name}"), 10, || {
            let config = SynthesisConfig {
                encoding: enc,
                swap_duration: 1,
                ..SynthesisConfig::default()
            };
            let mut model =
                FlatModel::build_with_style(&circuit, &graph, &config, 10, style).expect("builds");
            assert_eq!(model.solve(&[]), SolveResult::Sat);
        });
    }
}

fn cardinality_benches() {
    for (name, enc) in [
        ("seq_counter", CardEncoding::SequentialCounter),
        ("totalizer", CardEncoding::Totalizer),
        ("adder", CardEncoding::AdderNetwork),
    ] {
        bench(&format!("cardinality/{name}"), 20, || {
            let mut s = Solver::new();
            let xs: Vec<Lit> = (0..64).map(|_| Lit::positive(s.new_var())).collect();
            let mut card = CardinalityNetwork::new(&mut s, &xs, 16, enc);
            for &x in xs.iter().take(15) {
                s.add_clause([x]);
            }
            let bound = card.at_most(&mut s, 15);
            assert_eq!(s.solve(&[bound]), SolveResult::Sat);
            let tight = card.at_most(&mut s, 14);
            assert_eq!(s.solve(&[tight]), SolveResult::Unsat);
        });
    }
}

fn heuristic_benches() {
    let circuit = qaoa_circuit(16, 7);
    let graph = olsq2_arch::sycamore54();
    bench("sabre_qaoa16_sycamore", 20, || {
        let cfg = SabreConfig {
            swap_duration: 1,
            ..Default::default()
        };
        sabre_route(&circuit, &graph, &cfg).expect("routes");
    });
    let small = qaoa_circuit(8, 7);
    let small_graph = grid(3, 3);
    bench("satmap/satmap_qaoa8_grid3", 10, || {
        let cfg = SatMapConfig {
            swap_duration: 1,
            ..Default::default()
        };
        satmap_route(&small, &small_graph, &cfg).expect("maps");
    });
}

fn tb_bench() {
    let circuit = qaoa_circuit(8, 3);
    let graph = grid(3, 3);
    bench("tb_olsq2/blocks_qaoa8_grid3", 10, || {
        let synth = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        synth.optimize_blocks(&circuit, &graph).expect("solves");
    });
}

fn preprocess_bench() {
    use olsq2_sat::Preprocessor;
    // A Tseitin-heavy formula: cardinality networks are full of eliminable
    // auxiliary variables, the preprocessing sweet spot.
    let build = || {
        let mut cnf = olsq2_encode::Cnf::new();
        let xs: Vec<Lit> = (0..48)
            .map(|_| Lit::positive(olsq2_encode::CnfSink::new_var(&mut cnf)))
            .collect();
        let mut card = CardinalityNetwork::new(&mut cnf, &xs, 12, CardEncoding::Totalizer);
        let _ = card.at_most(&mut cnf, 10);
        for &x in xs.iter().take(11) {
            olsq2_encode::CnfSink::add_clause(&mut cnf, &[x]);
        }
        cnf
    };
    bench("preprocess/with", 20, || {
        let cnf = build();
        let simp = Preprocessor::new(cnf.num_vars(), cnf.clauses().iter().cloned()).run();
        let mut s = Solver::new();
        assert!(simp.solve_and_reconstruct(&mut s).is_some());
    });
    bench("preprocess/without", 20, || {
        let cnf = build();
        let mut s = Solver::new();
        cnf.load_into(&mut s);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    });
}

fn proof_bench() {
    bench("proof/php_4_3_record_and_check", 20, || {
        let mut s = Solver::new();
        s.enable_proof();
        let (p, h) = (4usize, 3usize);
        let mut x = vec![vec![Lit::positive(Var::from_index(0)); h]; p];
        for row in x.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Lit::positive(s.new_var());
            }
        }
        for row in &x {
            s.add_clause(row.iter().copied());
        }
        for hole in 0..h {
            for p1 in 0..p {
                for p2 in (p1 + 1)..p {
                    s.add_clause([!x[p1][hole], !x[p2][hole]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let proof = s.take_proof().expect("proof");
        assert_eq!(proof.check(), Ok(()));
    });
}

fn obs_bench() {
    // The telemetry contract: a disabled recorder costs one branch per
    // emission site, so the two variants must time the same to within
    // noise; the enabled run bounds the worst-case tracing overhead.
    let circuit = qaoa_circuit(8, 3);
    let graph = grid(3, 3);
    let run = |recorder: Recorder| {
        let mut config = SynthesisConfig::with_swap_duration(1);
        config.recorder = recorder;
        Olsq2Synthesizer::new(config)
            .optimize_depth(&circuit, &graph)
            .expect("solves");
    };
    bench("obs/recorder_disabled", 10, || run(Recorder::disabled()));
    bench("obs/recorder_enabled", 10, || run(Recorder::new()));
}

fn flight_bench() {
    // The flight-recorder contract mirrors the recorder's: a disabled
    // probe costs one branch per conflict, so `probe_disabled` must time
    // the same as a bare solve to within noise. The enabled runs bound
    // the sampling overhead at a dense (every=1) and the default (128)
    // cadence — the learnt-tier scan only runs when a sample is due.
    use olsq2::Probe;
    let run = |probe: Probe| {
        let (p, h) = (7usize, 6usize);
        let mut s = Solver::new();
        s.set_probe(probe);
        let mut x = vec![vec![Lit::positive(Var::from_index(0)); h]; p];
        for row in x.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Lit::positive(s.new_var());
            }
        }
        for row in &x {
            s.add_clause(row.iter().copied());
        }
        for hole in 0..h {
            for p1 in 0..p {
                for p2 in (p1 + 1)..p {
                    s.add_clause([!x[p1][hole], !x[p2][hole]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    };
    bench("flight/probe_disabled", 10, || run(Probe::disabled()));
    bench("flight/probe_every_128", 10, || run(Probe::new(4096, 128)));
    bench("flight/probe_every_1", 10, || run(Probe::new(4096, 1)));
}

fn solver_bench() {
    bench("solver/pigeonhole_5_4", 10, || {
        let (p, h) = (5usize, 4usize);
        let mut s = Solver::new();
        let mut x = vec![vec![Lit::positive(Var::from_index(0)); h]; p];
        for row in x.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Lit::positive(s.new_var());
            }
        }
        for row in &x {
            s.add_clause(row.iter().copied());
        }
        for hole in 0..h {
            for p1 in 0..p {
                for p2 in (p1 + 1)..p {
                    s.add_clause([!x[p1][hole], !x[p2][hole]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    });
}

fn main() {
    encoding_benches();
    cardinality_benches();
    heuristic_benches();
    tb_bench();
    preprocess_bench();
    proof_bench();
    obs_bench();
    flight_bench();
    solver_bench();
}
