//! Criterion micro-benchmarks backing the paper's performance claims at
//! laptop-friendly sizes:
//!
//! * `encoding/*` — Table I in miniature: time-to-solution of the
//!   OLSQ(int) baseline vs OLSQ2(bv) on the same QAOA feasibility instance;
//! * `cardinality/*` — Table II in miniature: sequential counter vs
//!   totalizer vs adder network on a popcount-bounding task;
//! * `sabre` and `satmap` — heuristic baseline throughput;
//! * `solver/pigeonhole` — raw CDCL performance on a classic UNSAT family.

use criterion::{criterion_group, criterion_main, Criterion};
use olsq2::{EncodingConfig, FlatModel, ModelStyle, SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::grid;
use olsq2_bench as _;
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_encode::{CardEncoding, CardinalityNetwork};
use olsq2_heuristic::{sabre_route, satmap_route, SabreConfig, SatMapConfig};
use olsq2_sat::{Lit, SolveResult, Solver};

fn encoding_benches(c: &mut Criterion) {
    let circuit = qaoa_circuit(8, 3);
    let graph = grid(3, 3);
    let mut group = c.benchmark_group("encoding");
    group.sample_size(10);
    for (name, style, enc) in [
        ("olsq_int", ModelStyle::OlsqBaseline, EncodingConfig::int()),
        ("olsq2_int", ModelStyle::Olsq2, EncodingConfig::int()),
        ("olsq2_euf_int", ModelStyle::Olsq2, EncodingConfig::euf_int()),
        ("olsq2_bv", ModelStyle::Olsq2, EncodingConfig::bv()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = SynthesisConfig {
                    encoding: enc,
                    swap_duration: 1,
                    ..SynthesisConfig::default()
                };
                let mut model =
                    FlatModel::build_with_style(&circuit, &graph, &config, 10, style)
                        .expect("builds");
                assert_eq!(model.solve(&[]), SolveResult::Sat);
            })
        });
    }
    group.finish();
}

fn cardinality_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("cardinality");
    for (name, enc) in [
        ("seq_counter", CardEncoding::SequentialCounter),
        ("totalizer", CardEncoding::Totalizer),
        ("adder", CardEncoding::AdderNetwork),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = Solver::new();
                let xs: Vec<Lit> = (0..64).map(|_| Lit::positive(s.new_var())).collect();
                let mut card = CardinalityNetwork::new(&mut s, &xs, 16, enc);
                for &x in xs.iter().take(15) {
                    s.add_clause([x]);
                }
                let bound = card.at_most(&mut s, 15);
                assert_eq!(s.solve(&[bound]), SolveResult::Sat);
                let tight = card.at_most(&mut s, 14);
                assert_eq!(s.solve(&[tight]), SolveResult::Unsat);
            })
        });
    }
    group.finish();
}

fn heuristic_benches(c: &mut Criterion) {
    let circuit = qaoa_circuit(16, 7);
    let graph = olsq2_arch::sycamore54();
    c.bench_function("sabre_qaoa16_sycamore", |b| {
        let mut cfg = SabreConfig::default();
        cfg.swap_duration = 1;
        b.iter(|| sabre_route(&circuit, &graph, &cfg).expect("routes"))
    });
    let small = qaoa_circuit(8, 7);
    let small_graph = grid(3, 3);
    let mut group = c.benchmark_group("satmap");
    group.sample_size(10);
    group.bench_function("satmap_qaoa8_grid3", |b| {
        let mut cfg = SatMapConfig::default();
        cfg.swap_duration = 1;
        b.iter(|| satmap_route(&small, &small_graph, &cfg).expect("maps"))
    });
    group.finish();
}

fn tb_bench(c: &mut Criterion) {
    let circuit = qaoa_circuit(8, 3);
    let graph = grid(3, 3);
    let mut group = c.benchmark_group("tb_olsq2");
    group.sample_size(10);
    group.bench_function("blocks_qaoa8_grid3", |b| {
        let synth = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        b.iter(|| synth.optimize_blocks(&circuit, &graph).expect("solves"))
    });
    group.finish();
}

fn preprocess_bench(c: &mut Criterion) {
    use olsq2_sat::Preprocessor;
    // A Tseitin-heavy formula: cardinality networks are full of eliminable
    // auxiliary variables, the preprocessing sweet spot.
    let build = || {
        let mut cnf = olsq2_encode::Cnf::new();
        let xs: Vec<Lit> = (0..48)
            .map(|_| Lit::positive(olsq2_encode::CnfSink::new_var(&mut cnf)))
            .collect();
        let mut card = CardinalityNetwork::new(&mut cnf, &xs, 12, CardEncoding::Totalizer);
        let _ = card.at_most(&mut cnf, 10);
        for &x in xs.iter().take(11) {
            olsq2_encode::CnfSink::add_clause(&mut cnf, &[x]);
        }
        cnf
    };
    let mut group = c.benchmark_group("preprocess");
    group.bench_function("with", |b| {
        b.iter(|| {
            let cnf = build();
            let simp = Preprocessor::new(cnf.num_vars(), cnf.clauses().iter().cloned()).run();
            let mut s = Solver::new();
            assert!(simp.solve_and_reconstruct(&mut s).is_some());
        })
    });
    group.bench_function("without", |b| {
        b.iter(|| {
            let cnf = build();
            let mut s = Solver::new();
            cnf.load_into(&mut s);
            assert_eq!(s.solve(&[]), SolveResult::Sat);
        })
    });
    group.finish();
}

fn proof_bench(c: &mut Criterion) {
    c.bench_function("proof/php_4_3_record_and_check", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            s.enable_proof();
            let (p, h) = (4usize, 3usize);
            let mut x = vec![vec![Lit::positive(Var::from_index(0)); h]; p];
            for row in x.iter_mut() {
                for cell in row.iter_mut() {
                    *cell = Lit::positive(s.new_var());
                }
            }
            for row in &x {
                s.add_clause(row.iter().copied());
            }
            for hole in 0..h {
                for p1 in 0..p {
                    for p2 in (p1 + 1)..p {
                        s.add_clause([!x[p1][hole], !x[p2][hole]]);
                    }
                }
            }
            assert_eq!(s.solve(&[]), SolveResult::Unsat);
            let proof = s.take_proof().expect("proof");
            assert_eq!(proof.check(), Ok(()));
        })
    });
}

fn solver_bench(c: &mut Criterion) {
    c.bench_function("solver/pigeonhole_7_into_6", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let (p, h) = (7usize, 6usize);
            let mut x = vec![vec![Lit::positive(Var::from_index(0)); h]; p];
            for row in x.iter_mut() {
                for cell in row.iter_mut() {
                    *cell = Lit::positive(s.new_var());
                }
            }
            for row in &x {
                s.add_clause(row.iter().copied());
            }
            for hole in 0..h {
                for p1 in 0..p {
                    for p2 in (p1 + 1)..p {
                        s.add_clause([!x[p1][hole], !x[p2][hole]]);
                    }
                }
            }
            assert_eq!(s.solve(&[]), SolveResult::Unsat);
        })
    });
}

use olsq2_sat::Var;

criterion_group!(
    benches,
    encoding_benches,
    cardinality_benches,
    heuristic_benches,
    tb_bench,
    solver_bench,
    preprocess_bench,
    proof_bench
);
criterion_main!(benches);
