//! A small, dependency-free, seedable pseudo-random number generator.
//!
//! The repository runs in fully offline environments, so the benchmark
//! generators (QUEKO scrambling, random regular graphs, SABRE's random
//! initial mappings) and the randomized tests cannot pull in an external
//! `rand` crate. This crate provides the tiny slice of functionality they
//! need on top of **xoshiro256\*\*** (Blackman & Vigna), seeded through
//! SplitMix64 — both public-domain algorithms with excellent statistical
//! quality for non-cryptographic use.
//!
//! Determinism is part of the contract: the same seed yields the same
//! stream on every platform, so benchmark instances and test cases are
//! reproducible across machines and CI runs.
//!
//! # Examples
//!
//! ```
//! use olsq2_prng::Rng;
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&die));
//! let mut deck: Vec<u32> = (0..52).collect();
//! rng.shuffle(&mut deck);
//! assert_eq!(deck.len(), 52);
//! // Same seed, same stream.
//! assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

/// A seedable xoshiro256\*\* pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64 (the seeding procedure the xoshiro authors
    /// recommend).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value below `bound` via Lemire's widening-multiply
    /// reduction (bias below 2⁻⁶⁴, irrelevant for this crate's uses).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive `a..=b`),
    /// for the primitive integer types the generators use.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, exactly representable in f64.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

/// Integer ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = ((end as $u).wrapping_sub(start as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i32 => u32, i64 => u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(123);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(123);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng::seed_from_u64(124).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(0u16..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut r = Rng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.gen_range(1usize..=6) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "some die face never rolled");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(77);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn choose_covers_slice() {
        let mut r = Rng::seed_from_u64(11);
        assert_eq!(r.choose::<u8>(&[]), None);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = r.choose(&items).unwrap();
            seen[items.iter().position(|&i| i == x).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5usize..5);
    }
}
