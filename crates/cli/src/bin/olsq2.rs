//! `olsq2` — command-line layout synthesis.
//!
//! ```text
//! olsq2 --qasm <file|-> --device <name> [--objective depth|swaps|blocks]
//!       [--swap-duration N] [--budget SECS] [--encoding int|bv|euf]
//!       [--tool olsq2|tb|sabre|satmap|astar|portfolio] [--output out.qasm]
//! ```
//!
//! Reads an OpenQASM 2.0 circuit, synthesizes a layout for the chosen
//! device, verifies it, reports depth/SWAP statistics, and (optionally)
//! writes the executable physical circuit back as QASM.

use olsq2::{
    EncodingConfig, Olsq2Synthesizer, PortfolioSynthesizer, SynthesisConfig, TbOlsq2Synthesizer,
};
use olsq2_arch::{
    aspen4, eagle127, grid, ibm_qx2, ibm_qx5, ibm_tokyo, line, sycamore54, CouplingGraph,
};
use olsq2_circuit::{parse_qasm, write_qasm};
use olsq2_layout::{emit_physical_circuit, verify, LayoutResult};
use std::io::Read;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: olsq2 --qasm <file|-> --device <name> \\
          [--objective depth|swaps] [--tool olsq2|tb|sabre|satmap|astar|portfolio] \\
          [--swap-duration N] [--budget SECS] [--encoding int|bv|euf] [--output out.qasm]

devices: qx2, qx5, tokyo, aspen4, sycamore, eagle, grid<WxH>, line<N>"
    );
    std::process::exit(2);
}

fn device_by_name(name: &str) -> Option<CouplingGraph> {
    match name {
        "qx2" => Some(ibm_qx2()),
        "qx5" => Some(ibm_qx5()),
        "tokyo" => Some(ibm_tokyo()),
        "aspen4" | "aspen-4" => Some(aspen4()),
        "sycamore" => Some(sycamore54()),
        "eagle" => Some(eagle127()),
        _ => {
            if let Some(rest) = name.strip_prefix("grid") {
                let (w, h) = rest.split_once('x')?;
                return Some(grid(w.parse().ok()?, h.parse().ok()?));
            }
            if let Some(rest) = name.strip_prefix("line") {
                return Some(line(rest.parse().ok()?));
            }
            None
        }
    }
}

fn main() {
    let mut qasm_path = None;
    let mut device_name = None;
    let mut objective = "swaps".to_string();
    let mut tool = "tb".to_string();
    let mut swap_duration = 3usize;
    let mut budget: Option<Duration> = None;
    let mut encoding = "int".to_string();
    let mut output: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--qasm" => qasm_path = Some(val(&mut args)),
            "--device" => device_name = Some(val(&mut args)),
            "--objective" => objective = val(&mut args),
            "--tool" => tool = val(&mut args),
            "--swap-duration" => {
                swap_duration = val(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--budget" => {
                budget = Some(Duration::from_secs(
                    val(&mut args).parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--encoding" => encoding = val(&mut args),
            "--output" => output = Some(val(&mut args)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let (Some(qasm_path), Some(device_name)) = (qasm_path, device_name) else {
        usage()
    };
    let source = if qasm_path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).expect("stdin");
        buf
    } else {
        std::fs::read_to_string(&qasm_path).unwrap_or_else(|e| {
            eprintln!("cannot read {qasm_path}: {e}");
            std::process::exit(2);
        })
    };
    let circuit = parse_qasm(&source).unwrap_or_else(|e| {
        eprintln!("QASM parse error: {e}");
        std::process::exit(2);
    });
    let device = device_by_name(&device_name).unwrap_or_else(|| {
        eprintln!("unknown device {device_name:?}");
        usage()
    });
    eprintln!(
        "circuit: {} gates over {} qubits; device: {device}",
        circuit.num_gates(),
        circuit.num_qubits()
    );

    let enc = match encoding.as_str() {
        "int" => EncodingConfig::int(),
        "bv" => EncodingConfig::bv(),
        "euf" => EncodingConfig::euf_int(),
        _ => usage(),
    };
    let config = SynthesisConfig {
        encoding: enc,
        swap_duration,
        time_budget: budget,
        ..SynthesisConfig::default()
    };

    let result: LayoutResult = match (tool.as_str(), objective.as_str()) {
        ("olsq2", "depth") => {
            let out = Olsq2Synthesizer::new(config)
                .optimize_depth(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            eprintln!(
                "optimal: {} ({} solver calls)",
                out.proven_optimal, out.iterations
            );
            out.result
        }
        ("olsq2", "swaps") => {
            let out = Olsq2Synthesizer::new(config)
                .optimize_swaps(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            eprintln!(
                "optimal: {} (pareto points: {:?})",
                out.best.proven_optimal, out.pareto
            );
            out.best.result
        }
        ("tb", "depth" | "blocks") => {
            let out = TbOlsq2Synthesizer::new(config)
                .optimize_blocks(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            eprintln!("blocks: {}", out.block_count);
            out.outcome.result
        }
        ("tb", "swaps") => {
            let out = TbOlsq2Synthesizer::new(config)
                .optimize_swaps(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            eprintln!(
                "optimal: {} ({} blocks)",
                out.outcome.proven_optimal, out.block_count
            );
            out.outcome.result
        }
        ("portfolio", "depth") => {
            let (out, winner) = PortfolioSynthesizer::standard(config)
                .optimize_depth(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            eprintln!("portfolio winner: member {winner}");
            out.result
        }
        ("portfolio", "swaps") => {
            let (out, winner) = PortfolioSynthesizer::standard(config)
                .optimize_swaps(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            eprintln!("portfolio winner: member {winner}");
            out.result
        }
        ("sabre", _) => {
            let mut cfg = olsq2_heuristic::SabreConfig::default();
            cfg.swap_duration = swap_duration;
            olsq2_heuristic::sabre_route(&circuit, &device, &cfg).unwrap_or_else(|e| fail(&e))
        }
        ("satmap", _) => {
            let mut cfg = olsq2_heuristic::SatMapConfig::default();
            cfg.swap_duration = swap_duration;
            cfg.time_budget = budget;
            olsq2_heuristic::satmap_route(&circuit, &device, &cfg)
                .unwrap_or_else(|e| fail(&e))
                .result
        }
        ("astar", _) => {
            let mut cfg = olsq2_heuristic::AstarConfig::default();
            cfg.swap_duration = swap_duration;
            olsq2_heuristic::astar_route(&circuit, &device, &cfg).unwrap_or_else(|e| fail(&e))
        }
        _ => usage(),
    };

    if let Err(violations) = verify(&circuit, &device, &result) {
        eprintln!("INTERNAL ERROR: result failed verification: {violations:?}");
        std::process::exit(1);
    }
    println!(
        "depth {}  swaps {}  (verified)",
        result.depth,
        result.swap_count()
    );
    if let Some(path) = output {
        let physical = emit_physical_circuit(&circuit, &device, &result).decompose_swaps();
        let text = write_qasm(&physical);
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(&path, text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote physical circuit to {path}");
        }
    }
}

fn fail(e: &dyn std::fmt::Display) -> ! {
    eprintln!("synthesis failed: {e}");
    std::process::exit(1)
}
