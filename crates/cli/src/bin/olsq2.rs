//! `olsq2` — command-line layout synthesis.
//!
//! ```text
//! olsq2 --qasm <file|-> --device <name> [--objective depth|swaps|blocks]
//!       [--swap-duration N] [--budget SECS] [--encoding int|bv|euf]
//!       [--tool olsq2|tb|sabre|satmap|astar|portfolio|cube] [--output out.qasm]
//!       [--diversify N] [--portfolio-share] [--no-incremental] [--legacy-solver]
//!       [--no-chrono] [--no-target-phase] [--no-glucose-restarts] [--no-structure-seeding]
//!       [--no-fork] [--cube-workers N] [--cube-depth N]
//!       [--trace-out trace.jsonl] [--report]
//!       [--flight-out flight.jsonl] [--flight-every N] [--flight-capacity N]
//!
//! olsq2 serve-batch --manifest <file|-> [--output <file|->]
//!       [--workers N] [--queue N] [--cache N] [--no-incremental]
//!       [--no-fork] [--snapshot-on-preempt]
//!       [--trace-out trace.jsonl] [--prom-out metrics.prom] [--prom-every SECS]
//!       [--http ADDR] [--flight-dir DIR] [--flight-every N] [--flight-capacity N]
//!       [--report]
//!
//! olsq2 trace-report <trace.jsonl|->
//!
//! olsq2 trace-diff <a.jsonl> <b.jsonl> [--label-a NAME] [--label-b NAME]
//!
//! olsq2 sat <file.cnf|-> [--preprocess] [--assume LIT]...
//!       [--budget-conflicts N] [--legacy-solver] [--stats]
//!       [--no-chrono] [--no-target-phase] [--no-glucose-restarts]
//!       [--cube-workers N] [--cube-depth N]
//! ```
//!
//! The first form reads an OpenQASM 2.0 circuit, synthesizes a layout for
//! the chosen device, verifies it, reports depth/SWAP statistics, and
//! (optionally) writes the executable physical circuit back as QASM.
//!
//! The `sat` form solves a raw DIMACS CNF file with the embedded CDCL
//! solver, printing SAT-competition style `s`/`v` lines and exiting 10
//! (SAT), 20 (UNSAT), or 0 (unknown / budget exhausted). `--preprocess`
//! runs SatELite-style simplification (variable elimination, subsumption)
//! first; variables named by `--assume` are frozen so assumptions stay
//! meaningful, and reported models are reconstructed over the original
//! variables either way. `--cube-workers`/`--cube-depth` switch to the
//! cube-and-conquer engine: the instance is split into a tree of
//! assumption cubes solved on a work-stealing pool (any `--assume`
//! literals become the shared base of every cube).
//!
//! Synthesis with `--tool cube` (or `--tool olsq2` plus a `--cube-*`
//! flag, depth objective only) routes the optimality-proving UNSAT
//! queries through the same cube engine.
//!
//! The `serve-batch` form reads a JSONL job manifest (see the
//! `olsq2-service` crate docs for the line format), drives the synthesis
//! service with a worker pool and canonicalizing result cache, and writes
//! one JSONL result line per job plus a final metrics summary line.
//!
//! Observability: `--trace-out` arms a recorder and dumps its JSONL trace
//! (spans, events, counters, histograms) to the given path; `--report`
//! prints the human-readable span tree instead of (or in addition to) the
//! raw trace; `--prom-out` writes service metrics plus recorder counters
//! in the Prometheus text format. `trace-report` re-renders a saved
//! JSONL trace as the span-tree report offline.
//!
//! `--flight-out` arms the search **flight recorder**: every SAT solver
//! the run builds records one sample per `--flight-every` conflicts
//! (default 128) into a lock-free ring of `--flight-capacity` slots
//! (default 4096), and the ring is dumped as versioned JSONL on exit —
//! including synthesis failure and panic — so the last moments of a
//! dying search are always recoverable. `--legacy-solver` runs the
//! pre-overhaul solver kernel *and* search policies (no chronological
//! backtracking, no Glucose restarts, no target phases, no structure
//! seeding), the natural A side of an A/B comparison; the individual
//! `--no-*` flags peel one policy at a time off the modern default for
//! ablations.
//!
//! `--no-fork` disables encode-once cohort forking: every portfolio
//! member, cube worker, and service job then pays its own encode instead
//! of forking a shared template solver. In `serve-batch`,
//! `--snapshot-on-preempt` lets deadline-cut jobs stash an O(memcpy)
//! solver snapshot so an identical resubmission resumes from it.
//!
//! `trace-diff` aligns two saved traces by their (objective, bound)
//! iteration schedule and attributes every per-iteration time delta to
//! encode time, solve throughput, or search divergence — the offline
//! answer to "*why* is run B slower than run A on this circuit". Flight
//! lines embedded in (or dumped next to) either trace feed a post-mortem
//! footer per side.

use olsq2::{
    EncodingConfig, Olsq2Synthesizer, PortfolioConfig, PortfolioReport, PortfolioSynthesizer,
    SynthesisConfig, TbOlsq2Synthesizer,
};
use olsq2_arch::device_by_name;
use olsq2_circuit::{parse_qasm, write_qasm};
use olsq2_layout::{emit_physical_circuit, verify, LayoutResult};
use olsq2_service::{manifest, ServiceConfig};
use std::io::Read;
use std::sync::OnceLock;
use std::time::Duration;

/// The armed flight recorder and its dump path, set once before synthesis
/// starts. `fail` exits the process without unwinding (destructors never
/// run) and panics bypass the success path entirely, so both routes reach
/// the ring through this global rather than through scope.
static FLIGHT: OnceLock<(olsq2::Probe, String)> = OnceLock::new();

/// Dumps the armed flight ring (if any) as versioned JSONL. Idempotent:
/// later calls rewrite the same file with a superset of the samples.
fn emit_flight() {
    let Some((probe, path)) = FLIGHT.get() else {
        return;
    };
    match probe.write_jsonl(std::path::Path::new(path)) {
        Ok(()) if probe.emitted() > 0 => eprintln!(
            "wrote flight recording ({} sample(s)) to {path}",
            probe.emitted()
        ),
        Ok(()) => {}
        Err(e) => eprintln!("cannot write flight recording {path}: {e}"),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: olsq2 --qasm <file|-> --device <name> \\
          [--objective depth|swaps] [--tool olsq2|tb|sabre|satmap|astar|portfolio|cube] \\
          [--swap-duration N] [--budget SECS] [--encoding int|bv|euf] [--output out.qasm] \\
          [--diversify N] [--portfolio-share] [--no-incremental] [--legacy-solver] \\
          [--no-chrono] [--no-target-phase] [--no-glucose-restarts] [--no-structure-seeding] \\
          [--no-fork] [--cube-workers N] [--cube-depth N] \\
          [--trace-out trace.jsonl] [--report] \\
          [--flight-out flight.jsonl] [--flight-every N] [--flight-capacity N]
       olsq2 serve-batch --manifest <file|-> [--output <file|->] \\
          [--workers N] [--queue N] [--cache N] [--no-incremental] \\
          [--no-fork] [--snapshot-on-preempt] \\
          [--trace-out trace.jsonl] [--prom-out metrics.prom] [--prom-every SECS] \\
          [--http ADDR] [--flight-dir DIR] [--flight-every N] [--flight-capacity N] \\
          [--report]
       olsq2 trace-report <trace.jsonl|->
       olsq2 trace-diff <a.jsonl> <b.jsonl> [--label-a NAME] [--label-b NAME]
       olsq2 sat <file.cnf|-> [--preprocess] [--assume LIT]... \\
          [--budget-conflicts N] [--legacy-solver] [--stats] \\
          [--no-chrono] [--no-target-phase] [--no-glucose-restarts] \\
          [--cube-workers N] [--cube-depth N]

devices: qx2, qx5, tokyo, aspen4, sycamore, eagle, grid<WxH>, line<N>, complete<N>"
    );
    std::process::exit(2);
}

fn read_input(path: &str) -> String {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).expect("stdin");
        buf
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        })
    }
}

fn serve_batch(args: impl Iterator<Item = String>) {
    let mut manifest_path = None;
    let mut output: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut prom_out: Option<String> = None;
    let mut prom_every_secs = 5u64;
    let mut http_addr: Option<String> = None;
    let mut flight_dir: Option<String> = None;
    let mut flight_every = 128u64;
    let mut flight_capacity = 1024usize;
    let mut flight = false;
    let mut report = false;
    let mut no_fork = false;
    let mut config = ServiceConfig::default();
    let mut args = args;
    while let Some(a) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--manifest" => manifest_path = Some(val(&mut args)),
            "--output" => output = Some(val(&mut args)),
            "--workers" => config.workers = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--queue" => config.queue_capacity = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--cache" => config.cache_capacity = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--no-incremental" => config.incremental = false,
            "--no-fork" => no_fork = true,
            "--snapshot-on-preempt" => config.snapshot_on_preempt = true,
            "--trace-out" => trace_out = Some(val(&mut args)),
            "--prom-out" => prom_out = Some(val(&mut args)),
            "--prom-every" => {
                prom_every_secs = val(&mut args)
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--http" => http_addr = Some(val(&mut args)),
            "--flight-dir" => {
                flight_dir = Some(val(&mut args));
                flight = true;
            }
            "--flight-every" => {
                flight_every = val(&mut args)
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
                flight = true;
            }
            "--flight-capacity" => {
                flight_capacity = val(&mut args)
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
                flight = true;
            }
            "--report" => report = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(manifest_path) = manifest_path else {
        usage()
    };
    let recorder = if trace_out.is_some() || report {
        olsq2::Recorder::new()
    } else {
        olsq2::Recorder::disabled()
    };
    config.recorder = recorder.clone();
    // Any --flight-* flag (or --http, whose /flight route needs rings)
    // arms per-job flight recorders.
    if flight || http_addr.is_some() {
        if let Some(dir) = &flight_dir {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create flight dir {dir}: {e}");
                std::process::exit(2);
            });
        }
        config.flight = Some(olsq2_service::FlightSettings {
            capacity: flight_capacity,
            every: flight_every,
            dir: flight_dir.as_ref().map(std::path::PathBuf::from),
        });
    }
    let text = read_input(&manifest_path);
    let mut requests = manifest::parse_manifest(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if no_fork {
        for req in &mut requests {
            req.config.fork_spawn = false;
        }
    }
    let total = requests.len();
    eprintln!(
        "serve-batch: {total} job(s), {} worker(s), queue {}, cache {}",
        config.workers, config.queue_capacity, config.cache_capacity
    );

    let mut service = olsq2_service::SynthesisService::start(config);
    let intro = service.introspection();
    let mut http_server = http_addr.as_ref().map(|addr| {
        let server =
            olsq2_service::IntrospectionServer::start(addr, intro.clone()).unwrap_or_else(|e| {
                eprintln!("cannot bind {addr}: {e}");
                std::process::exit(2);
            });
        eprintln!("introspection endpoint on http://{}/", server.local_addr());
        server
    });
    // Periodic Prometheus flush: scrape-style agents can tail the file
    // while the batch runs; the final write below flushes at shutdown.
    let flush_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flusher = prom_out.clone().map(|path| {
        let stop = flush_stop.clone();
        let intro = intro.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::fs::write(&path, intro.prometheus_text()).ok();
                // Sleep in short slices so shutdown is prompt.
                for _ in 0..prom_every_secs * 10 {
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        })
    });

    let (statuses, metrics) = manifest::run_batch_on(&service, requests);

    flush_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(flusher) = flusher {
        let _ = flusher.join();
    }
    if let Some(path) = &prom_out {
        write_output(path, &olsq2_service::prometheus_text(&metrics, &recorder));
        eprintln!("wrote prometheus metrics to {path}");
    }
    emit_trace(&recorder, trace_out.as_deref(), report);
    let mut lines = String::new();
    for (name, tenant, status) in &statuses {
        lines.push_str(&manifest::status_to_json(name, tenant, status).to_string());
        lines.push('\n');
    }
    lines.push_str(&manifest::metrics_to_json(&metrics).to_string());
    lines.push('\n');
    match output.as_deref() {
        None | Some("-") => print!("{lines}"),
        Some(path) => {
            std::fs::write(path, &lines).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote {} result line(s) to {path}", statuses.len() + 1);
        }
    }
    eprintln!(
        "done: {} ok ({} degraded), {} failed, {} cancelled; cache {} hit(s) / {} miss(es); {} window extension(s); p50 {}ms p95 {}ms",
        metrics.done,
        metrics.degraded,
        metrics.failed,
        metrics.cancelled,
        metrics.cache.hits,
        metrics.cache.misses,
        metrics.window_extensions,
        metrics.p50_latency.as_millis(),
        metrics.p95_latency.as_millis()
    );
    if let Some(server) = &mut http_server {
        server.shutdown();
    }
    service.shutdown();
    let any_failed = statuses
        .iter()
        .any(|(_, _, s)| !matches!(s, olsq2_service::JobStatus::Done(_)));
    std::process::exit(if any_failed { 1 } else { 0 });
}

fn write_output(path: &str, text: &str) {
    if path == "-" {
        print!("{text}");
    } else {
        std::fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
    }
}

/// Dumps an armed recorder: the JSONL trace to `trace_out` (if given) and
/// the human-readable span tree to stderr (if `report`).
fn emit_trace(recorder: &olsq2::Recorder, trace_out: Option<&str>, report: bool) {
    if !recorder.is_enabled() {
        return;
    }
    let snapshot = recorder.snapshot();
    if let Some(path) = trace_out {
        write_output(path, &snapshot.to_jsonl());
        if path != "-" {
            eprintln!(
                "wrote trace ({} span(s), {} event(s)) to {path}",
                snapshot.spans.len(),
                snapshot.events.len()
            );
        }
    }
    if report {
        eprint!("{}", olsq2_obs::report::render(&snapshot.spans));
    }
}

fn json_to_field(value: &olsq2_service::json::Json) -> olsq2_obs::FieldValue {
    use olsq2_service::json::Json;
    match value {
        Json::Bool(b) => (*b).into(),
        Json::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
            (*n as u64).into()
        }
        Json::Number(n) if n.fract() == 0.0 && *n >= -(2f64.powi(53)) => (*n as i64).into(),
        Json::Number(n) => (*n).into(),
        Json::String(s) => s.as_str().into(),
        other => other.to_string().into(),
    }
}

/// Re-renders a saved JSONL trace (written by `--trace-out`) as the
/// span-tree report, on stdout.
fn trace_report(path: &str) {
    let text = read_input(path);
    let mut spans: Vec<olsq2_obs::SpanData> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let value = olsq2_service::json::parse(trimmed).unwrap_or_else(|e| {
            eprintln!("trace line {}: {e}", i + 1);
            std::process::exit(2);
        });
        let kind = value.get("type").and_then(|t| t.as_str()).unwrap_or("");
        if kind == "meta" {
            if value.get("version").and_then(|v| v.as_u64()) != Some(1) {
                eprintln!("trace line {}: unsupported trace version", i + 1);
                std::process::exit(2);
            }
            continue;
        }
        if kind != "span" {
            continue; // events/counters/hists don't feed the span tree
        }
        let field = |key: &str| value.get(key).and_then(|v| v.as_u64());
        let (Some(id), Some(start_us)) = (field("id"), field("start_us")) else {
            eprintln!("trace line {}: span missing id/start_us", i + 1);
            std::process::exit(2);
        };
        let fields = value
            .get("fields")
            .and_then(|f| f.as_object())
            .map(|obj| {
                obj.iter()
                    .map(|(k, v)| (k.clone(), json_to_field(v)))
                    .collect()
            })
            .unwrap_or_default();
        spans.push(olsq2_obs::SpanData {
            id,
            parent: field("parent"),
            name: value
                .get("name")
                .and_then(|n| n.as_str())
                .unwrap_or("?")
                .to_string(),
            start_us,
            dur_us: field("dur_us"),
            fields,
        });
    }
    print!("{}", olsq2_obs::report::render(&spans));
}

/// `olsq2 trace-diff`: align two saved JSONL traces by their
/// (objective, bound) iteration schedule and print the per-iteration A/B
/// attribution table (encode vs solve time vs search divergence), plus a
/// flight-recorder post-mortem per side when flight lines are present.
fn trace_diff(args: impl Iterator<Item = String>) -> ! {
    let mut paths: Vec<String> = Vec::new();
    let mut label_a: Option<String> = None;
    let mut label_b: Option<String> = None;
    let mut args = args;
    while let Some(a) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--label-a" => label_a = Some(val(&mut args)),
            "--label-b" => label_b = Some(val(&mut args)),
            "--help" | "-h" => usage(),
            _ if paths.len() < 2 => paths.push(a),
            _ => usage(),
        }
    }
    if paths.len() != 2 {
        usage();
    }
    let a_text = read_input(&paths[0]);
    let b_text = read_input(&paths[1]);
    let report = olsq2_obs::diff::diff(
        &a_text,
        &b_text,
        label_a.as_deref().unwrap_or(&paths[0]),
        label_b.as_deref().unwrap_or(&paths[1]),
    )
    .unwrap_or_else(|e| {
        eprintln!("trace-diff: {e}");
        std::process::exit(2);
    });
    print!("{}", report.render());
    // No aligned iterations means the traces don't describe comparable
    // runs; exit non-zero so scripted A/B checks notice.
    std::process::exit(if report.matched() == 0 { 1 } else { 0 });
}

/// `olsq2 sat`: solve a raw DIMACS CNF with the embedded CDCL solver.
///
/// Exit codes follow the SAT-competition convention: 10 for SAT, 20 for
/// UNSAT, 0 when the conflict budget ran out before an answer.
fn sat_command(args: impl Iterator<Item = String>) -> ! {
    use olsq2_sat::{Lit, Preprocessor, SolveResult, Solver, SolverFeatures, Var};

    let mut cnf_path: Option<String> = None;
    let mut preprocess = false;
    let mut assumes: Vec<i64> = Vec::new();
    let mut budget: Option<u64> = None;
    let mut legacy = false;
    let mut no_chrono = false;
    let mut no_target_phase = false;
    let mut no_glucose = false;
    let mut stats = false;
    let mut cube_workers: Option<usize> = None;
    let mut cube_depth: Option<usize> = None;
    let mut args = args;
    while let Some(a) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--preprocess" => preprocess = true,
            "--assume" => {
                let raw = val(&mut args);
                let dimacs: i64 = raw.parse().unwrap_or_else(|_| usage());
                if dimacs == 0 {
                    usage();
                }
                assumes.push(dimacs);
            }
            "--budget-conflicts" => {
                budget = Some(val(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--legacy-solver" => legacy = true,
            "--no-chrono" => no_chrono = true,
            "--no-target-phase" => no_target_phase = true,
            "--no-glucose-restarts" => no_glucose = true,
            "--stats" => stats = true,
            "--cube-workers" => {
                cube_workers = Some(
                    val(&mut args)
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--cube-depth" => {
                cube_depth = Some(
                    val(&mut args)
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            _ if cnf_path.is_none() => cnf_path = Some(a),
            _ => usage(),
        }
    }
    let Some(cnf_path) = cnf_path else { usage() };
    let text = read_input(&cnf_path);
    let cnf = olsq2_encode::from_dimacs(&text).unwrap_or_else(|e| {
        eprintln!("DIMACS parse error: {e}");
        std::process::exit(2);
    });
    let lit_of = |dimacs: i64| -> Lit {
        let var = Var::from_index(dimacs.unsigned_abs() as usize - 1);
        if dimacs > 0 {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    };
    for &d in &assumes {
        if d.unsigned_abs() as usize > cnf.num_vars() {
            eprintln!(
                "--assume {d} names a variable beyond p cnf {}",
                cnf.num_vars()
            );
            std::process::exit(2);
        }
    }
    let assumptions: Vec<Lit> = assumes.iter().map(|&d| lit_of(d)).collect();

    let features = {
        let mut f = if legacy {
            SolverFeatures::legacy()
        } else {
            SolverFeatures::default()
        };
        if no_chrono {
            f.chrono_backtrack = false;
        }
        if no_target_phase {
            f.target_phase = false;
        }
        if no_glucose {
            f.glucose_restarts = false;
            f.restart_postpone = false;
        }
        f
    };

    let mut solver = Solver::new();
    solver.set_features(features);
    solver.set_conflict_budget(budget);

    // With --preprocess the solver sees the simplified formula; the model
    // is then reconstructed over the original variables. Assumption
    // variables are frozen so BVE cannot eliminate them out from under
    // the `solve(&assumptions)` call.
    let simplified = if preprocess {
        let mut pre = Preprocessor::new(cnf.num_vars(), cnf.clauses().iter().cloned());
        for &d in &assumes {
            pre.freeze(Var::from_index(d.unsigned_abs() as usize - 1));
        }
        let simplified = pre.run();
        eprintln!(
            "preprocess: {} -> {} clause(s), {} variable(s) eliminated",
            cnf.num_clauses(),
            simplified.clauses().len(),
            simplified.num_eliminated()
        );
        simplified.load_into(&mut solver);
        Some(simplified)
    } else {
        cnf.load_into(&mut solver);
        None
    };

    // Cube mode: split the instance into a tree of assumption cubes and
    // solve them on a work-stealing pool. Any `--assume` literals become
    // the shared base of every cube; with `--preprocess` the cubes run
    // over the simplified formula and the model is reconstructed.
    if cube_workers.is_some() || cube_depth.is_some() {
        use olsq2_cube::{solve_cubes, CubeConfig, CubeSolvable, SatCubeSolver};
        if budget.is_some() {
            eprintln!(
                "note: --budget-conflicts is ignored in cube mode \
                 (the per-cube budget triggers re-splits instead)"
            );
        }
        let clauses: Vec<Vec<Lit>> = match &simplified {
            Some(s) => s.clauses().to_vec(),
            None => cnf.clauses().to_vec(),
        };
        let num_vars = cnf.num_vars();
        let cube_cfg = CubeConfig {
            workers: cube_workers.unwrap_or(4),
            depth: cube_depth.unwrap_or(2),
            ..CubeConfig::default()
        };
        let run = solve_cubes(
            |_| {
                let mut w = SatCubeSolver::new(num_vars, &clauses, false);
                w.solver_mut().set_features(features);
                w.set_base(assumptions.clone());
                w
            },
            &cube_cfg,
            &olsq2_obs::Recorder::disabled(),
        );
        if stats {
            let (mut conflicts, mut decisions, mut propagations, mut restarts) =
                (0u64, 0u64, 0u64, 0u64);
            for w in &run.workers {
                let s = w.solver().stats();
                conflicts += s.conflicts;
                decisions += s.decisions;
                propagations += s.propagations;
                restarts += s.restarts;
            }
            eprintln!(
                "c conflicts {conflicts} decisions {decisions} propagations {propagations} \
                 restarts {restarts} (summed over {} cube worker(s))",
                run.workers.len()
            );
            let cs = &run.stats;
            eprintln!(
                "c cubes-split {} cubes-refuted {} pruned-by-core {} steals {} resplits {}",
                cs.cubes_split, cs.cubes_refuted, cs.cubes_pruned_by_core, cs.steals, cs.resplits
            );
        }
        match run.result {
            SolveResult::Sat => {
                let witness = run.witness().expect("SAT run names its witness");
                let mut model: Vec<bool> = (0..cnf.num_vars())
                    .map(|i| {
                        witness
                            .solver()
                            .model_value(Lit::positive(Var::from_index(i)))
                            .unwrap_or(false)
                    })
                    .collect();
                if let Some(simplified) = &simplified {
                    simplified.reconstruct(&mut model);
                }
                print_model_and_exit(&model);
            }
            SolveResult::Unsat => {
                println!("s UNSATISFIABLE");
                std::process::exit(20);
            }
            SolveResult::Unknown => {
                println!("s UNKNOWN");
                std::process::exit(0);
            }
        }
    }

    let verdict = solver.solve(&assumptions);
    if stats {
        let s = solver.stats();
        eprintln!(
            "c conflicts {} decisions {} propagations {} (binary {}) restarts {}",
            s.conflicts, s.decisions, s.propagations, s.binary_props, s.restarts
        );
        eprintln!(
            "c vivified {} strengthened {} tier-demotions {} rephases {}",
            s.vivified, s.strengthened, s.tier_demotions, s.rephases
        );
        eprintln!(
            "c chrono-backtracks {} blocked-restarts {} target-rephases {}",
            s.chrono_backtracks, s.blocked_restarts, s.target_rephases
        );
    }
    match verdict {
        SolveResult::Sat => {
            let mut model: Vec<bool> = (0..cnf.num_vars())
                .map(|i| {
                    solver
                        .model_value(Lit::positive(Var::from_index(i)))
                        .unwrap_or(false)
                })
                .collect();
            if let Some(simplified) = &simplified {
                simplified.reconstruct(&mut model);
            }
            print_model_and_exit(&model);
        }
        SolveResult::Unsat => {
            println!("s UNSATISFIABLE");
            std::process::exit(20);
        }
        SolveResult::Unknown => {
            println!("s UNKNOWN");
            std::process::exit(0);
        }
    }
}

/// Prints `s SATISFIABLE` plus the wrapped `v` lines and exits 10.
fn print_model_and_exit(model: &[bool]) -> ! {
    println!("s SATISFIABLE");
    let mut line = String::from("v");
    for (i, &value) in model.iter().enumerate() {
        line.push(' ');
        if !value {
            line.push('-');
        }
        line.push_str(&(i + 1).to_string());
        if line.len() > 72 {
            println!("{line}");
            line = String::from("v");
        }
    }
    line.push_str(" 0");
    println!("{line}");
    std::process::exit(10);
}

fn main() {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("serve-batch") {
        raw.next();
        serve_batch(raw);
        return;
    }
    if raw.peek().map(String::as_str) == Some("sat") {
        raw.next();
        sat_command(raw);
    }
    if raw.peek().map(String::as_str) == Some("trace-report") {
        raw.next();
        let path = raw.next().unwrap_or_else(|| "-".to_string());
        if raw.next().is_some() {
            usage();
        }
        trace_report(&path);
        return;
    }
    if raw.peek().map(String::as_str) == Some("trace-diff") {
        raw.next();
        trace_diff(raw);
    }
    let mut qasm_path = None;
    let mut device_name = None;
    let mut objective = "swaps".to_string();
    let mut tool = "tb".to_string();
    let mut swap_duration = 3usize;
    let mut budget: Option<Duration> = None;
    let mut encoding = "int".to_string();
    let mut output: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut report = false;
    let mut diversify = 1usize;
    let mut portfolio_share = false;
    let mut incremental = true;
    let mut legacy = false;
    let mut no_chrono = false;
    let mut no_target_phase = false;
    let mut no_glucose = false;
    let mut no_structure_seeding = false;
    let mut fork_spawn = true;
    let mut flight_out: Option<String> = None;
    let mut flight_every = 128u64;
    let mut flight_capacity = 4096usize;
    let mut cube_workers: Option<usize> = None;
    let mut cube_depth: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--qasm" => qasm_path = Some(val(&mut args)),
            "--device" => device_name = Some(val(&mut args)),
            "--objective" => objective = val(&mut args),
            "--tool" => tool = val(&mut args),
            "--swap-duration" => swap_duration = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--budget" => {
                budget = Some(Duration::from_secs(
                    val(&mut args).parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--encoding" => encoding = val(&mut args),
            "--output" => output = Some(val(&mut args)),
            "--trace-out" => trace_out = Some(val(&mut args)),
            "--report" => report = true,
            "--diversify" => {
                diversify = val(&mut args).parse().unwrap_or_else(|_| usage());
                if diversify == 0 {
                    usage();
                }
            }
            "--portfolio-share" => portfolio_share = true,
            "--no-incremental" => incremental = false,
            "--legacy-solver" => legacy = true,
            "--no-chrono" => no_chrono = true,
            "--no-target-phase" => no_target_phase = true,
            "--no-glucose-restarts" => no_glucose = true,
            "--no-structure-seeding" => no_structure_seeding = true,
            "--no-fork" => fork_spawn = false,
            "--flight-out" => flight_out = Some(val(&mut args)),
            "--flight-every" => {
                flight_every = val(&mut args)
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--flight-capacity" => {
                flight_capacity = val(&mut args)
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--cube-workers" => {
                cube_workers = Some(
                    val(&mut args)
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--cube-depth" => {
                cube_depth = Some(
                    val(&mut args)
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let (Some(qasm_path), Some(device_name)) = (qasm_path, device_name) else {
        usage()
    };
    let source = if qasm_path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).expect("stdin");
        buf
    } else {
        std::fs::read_to_string(&qasm_path).unwrap_or_else(|e| {
            eprintln!("cannot read {qasm_path}: {e}");
            std::process::exit(2);
        })
    };
    let circuit = parse_qasm(&source).unwrap_or_else(|e| {
        eprintln!("QASM parse error: {e}");
        std::process::exit(2);
    });
    let device = device_by_name(&device_name).unwrap_or_else(|| {
        eprintln!("unknown device {device_name:?}");
        usage()
    });
    eprintln!(
        "circuit: {} gates over {} qubits; device: {device}",
        circuit.num_gates(),
        circuit.num_qubits()
    );

    let enc = match encoding.as_str() {
        "int" => EncodingConfig::int(),
        "bv" => EncodingConfig::bv(),
        "euf" => EncodingConfig::euf_int(),
        _ => usage(),
    };
    let recorder = if trace_out.is_some() || report {
        olsq2::Recorder::new()
    } else {
        olsq2::Recorder::disabled()
    };
    let probe = if flight_out.is_some() {
        olsq2::Probe::new(flight_capacity, flight_every)
    } else {
        olsq2::Probe::disabled()
    };
    if let Some(path) = &flight_out {
        // Arm the dump-on-exit paths before synthesis starts: `fail` exits
        // without running destructors, and a panic in the search would
        // otherwise lose exactly the samples worth reading.
        let _ = FLIGHT.set((probe.clone(), path.clone()));
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            emit_flight();
            default_hook(info);
        }));
    }
    let config = SynthesisConfig {
        encoding: enc,
        swap_duration,
        time_budget: budget,
        recorder: recorder.clone(),
        probe: probe.clone(),
        incremental,
        fork_spawn,
        solver_features: {
            // `--legacy-solver` wins outright (including the new search
            // policies); the `--no-*` knobs peel single features off the
            // modern default for ablations.
            let mut f = if legacy {
                olsq2::SolverFeatures::legacy()
            } else {
                olsq2::SolverFeatures::default()
            };
            if no_chrono {
                f.chrono_backtrack = false;
            }
            if no_target_phase {
                f.target_phase = false;
            }
            if no_glucose {
                f.glucose_restarts = false;
                f.restart_postpone = false;
            }
            if no_structure_seeding {
                f.structure_seeding = false;
            }
            f
        },
        ..SynthesisConfig::default()
    };

    // A `--cube-*` flag on the exact tool opts depth optimization into
    // the cube engine without having to spell `--tool cube`.
    let tool = if tool == "olsq2"
        && objective == "depth"
        && (cube_workers.is_some() || cube_depth.is_some())
    {
        "cube".to_string()
    } else {
        tool
    };

    let result: LayoutResult = match (tool.as_str(), objective.as_str()) {
        ("cube", "depth") => {
            let mut params = olsq2::CubeParams::default();
            if let Some(w) = cube_workers {
                params.workers = w;
            }
            if let Some(d) = cube_depth {
                params.depth = d;
            }
            let out = olsq2::CubeSynthesizer::new(config, params)
                .optimize_depth(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            let cs = &out.cube_stats;
            eprintln!(
                "optimal: {} ({} solver calls; cubes: {} split, {} refuted, \
                 {} pruned by cores, {} steals, {} resplits)",
                out.outcome.proven_optimal,
                out.outcome.iterations,
                cs.cubes_split,
                cs.cubes_refuted,
                cs.cubes_pruned_by_core,
                cs.steals,
                cs.resplits
            );
            out.outcome.result
        }
        ("olsq2", "depth") => {
            let out = Olsq2Synthesizer::new(config)
                .optimize_depth(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            eprintln!(
                "optimal: {} ({} solver calls, {} window extension(s))",
                out.proven_optimal, out.iterations, out.extensions
            );
            out.result
        }
        ("olsq2", "swaps") => {
            let out = Olsq2Synthesizer::new(config)
                .optimize_swaps(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            eprintln!(
                "optimal: {} (pareto points: {:?}, {} window extension(s))",
                out.best.proven_optimal, out.pareto, out.best.extensions
            );
            out.best.result
        }
        ("tb", "depth" | "blocks") => {
            let out = TbOlsq2Synthesizer::new(config)
                .optimize_blocks(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            eprintln!(
                "blocks: {} ({} window extension(s))",
                out.block_count, out.outcome.extensions
            );
            out.outcome.result
        }
        ("tb", "swaps") => {
            let out = TbOlsq2Synthesizer::new(config)
                .optimize_swaps(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            eprintln!(
                "optimal: {} ({} blocks, {} window extension(s))",
                out.outcome.proven_optimal, out.block_count, out.outcome.extensions
            );
            out.outcome.result
        }
        ("portfolio", "depth") => {
            let mut cfg = PortfolioConfig::standard().diversify(diversify);
            if portfolio_share {
                cfg = cfg.with_sharing();
            }
            let report = PortfolioSynthesizer::with_config(config, &cfg)
                .optimize_depth_report(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            describe_portfolio(&report);
            report.outcome.result
        }
        ("portfolio", "swaps") => {
            let mut cfg = PortfolioConfig::standard().diversify(diversify);
            if portfolio_share {
                cfg = cfg.with_sharing();
            }
            let report = PortfolioSynthesizer::with_config(config, &cfg)
                .optimize_swaps_report(&circuit, &device)
                .unwrap_or_else(|e| fail(&e));
            describe_portfolio(&report);
            report.outcome.result
        }
        ("sabre", _) => {
            let cfg = olsq2_heuristic::SabreConfig {
                swap_duration,
                ..Default::default()
            };
            olsq2_heuristic::sabre_route(&circuit, &device, &cfg).unwrap_or_else(|e| fail(&e))
        }
        ("satmap", _) => {
            let cfg = olsq2_heuristic::SatMapConfig {
                swap_duration,
                time_budget: budget,
                ..Default::default()
            };
            olsq2_heuristic::satmap_route(&circuit, &device, &cfg)
                .unwrap_or_else(|e| fail(&e))
                .result
        }
        ("astar", _) => {
            let cfg = olsq2_heuristic::AstarConfig {
                swap_duration,
                ..Default::default()
            };
            olsq2_heuristic::astar_route(&circuit, &device, &cfg).unwrap_or_else(|e| fail(&e))
        }
        _ => usage(),
    };

    emit_trace(&recorder, trace_out.as_deref(), report);
    emit_flight();

    if let Err(violations) = verify(&circuit, &device, &result) {
        eprintln!("INTERNAL ERROR: result failed verification: {violations:?}");
        std::process::exit(1);
    }
    println!(
        "depth {}  swaps {}  (verified)",
        result.depth,
        result.swap_count()
    );
    if let Some(path) = output {
        let physical = emit_physical_circuit(&circuit, &device, &result).decompose_swaps();
        let text = write_qasm(&physical);
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(&path, text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote physical circuit to {path}");
        }
    }
}

fn describe_portfolio(report: &PortfolioReport) {
    eprintln!(
        "portfolio winner: member {} of {}",
        report.winner,
        report.members.len()
    );
    if let Some(s) = &report.sharing {
        eprintln!(
            "clause sharing: {} exported, {} imported, {} filtered",
            s.exported, s.imported, s.filtered
        );
    }
}

fn fail(e: &dyn std::fmt::Display) -> ! {
    eprintln!("synthesis failed: {e}");
    // Deadline expiry and refused window extensions land here; the flight
    // ring holds the search's final moments, so dump it before dying.
    emit_flight();
    std::process::exit(1)
}
