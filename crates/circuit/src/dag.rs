//! Gate dependency analysis.
//!
//! Builds the dependency list `D` of §II-A — pairs `(g, g')` where `g`
//! immediately precedes `g'` on some shared qubit — plus the derived
//! quantities the synthesizer needs: the longest dependency chain `T_LB`
//! (Fig. 5 of the paper) and per-gate predecessor/successor adjacency used
//! by both the SMT models and the SABRE baseline.

use crate::circuit::Circuit;

/// Dependency structure of a circuit.
///
/// # Examples
///
/// ```
/// use olsq2_circuit::{Circuit, DependencyGraph, Gate, GateKind};
/// let mut c = Circuit::new(3);
/// c.push(Gate::two(GateKind::Cx, 0, 1));
/// c.push(Gate::two(GateKind::Cx, 1, 2));
/// c.push(Gate::two(GateKind::Cx, 0, 2));
/// let dag = DependencyGraph::new(&c);
/// assert_eq!(dag.longest_chain(), 3);
/// assert_eq!(dag.dependencies(), &[(0, 1), (0, 2), (1, 2)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyGraph {
    num_gates: usize,
    /// Immediate dependencies `(earlier, later)`, sorted.
    dependencies: Vec<(usize, usize)>,
    predecessors: Vec<Vec<usize>>,
    successors: Vec<Vec<usize>>,
    /// Earliest possible time step of each gate under unit durations.
    asap_level: Vec<usize>,
    longest_chain: usize,
}

impl DependencyGraph {
    /// Analyzes `circuit` with the paper's plain rule: consecutive gates
    /// on a shared qubit are ordered.
    pub fn new(circuit: &Circuit) -> DependencyGraph {
        let n = circuit.num_gates();
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        let mut dependencies = Vec::new();
        for (i, gate) in circuit.gates().iter().enumerate() {
            for q in gate.operands.qubits() {
                if let Some(prev) = last_on_qubit[q as usize] {
                    dependencies.push((prev, i));
                }
                last_on_qubit[q as usize] = Some(i);
            }
        }
        Self::from_dependency_pairs(n, dependencies)
    }

    /// Analyzes `circuit` with *commutation awareness* (gate absorption,
    /// Tan & Cong ICCAD'21, the OLSQ2 paper's ref. \[23\]): consecutive
    /// gates that provably commute on their shared qubits are left
    /// unordered. On a QAOA phase-splitting circuit, whose ZZ gates all
    /// commute, this collapses `T_LB` to 1 and widens the solution space
    /// the exact synthesizer may exploit.
    pub fn new_with_commutation(circuit: &Circuit) -> DependencyGraph {
        let n = circuit.num_gates();
        // Per qubit: the currently "open" group of pairwise-commuting
        // gates, plus the group before it. A new gate that commutes with
        // the whole open group joins it and depends on the previous group;
        // otherwise it depends on the whole open group and starts a new one.
        let mut open: Vec<Vec<usize>> = vec![Vec::new(); circuit.num_qubits()];
        let mut prev: Vec<Vec<usize>> = vec![Vec::new(); circuit.num_qubits()];
        let mut dependencies = Vec::new();
        for (i, gate) in circuit.gates().iter().enumerate() {
            for q in gate.operands.qubits() {
                let qi = q as usize;
                let joins = open[qi]
                    .iter()
                    .all(|&g| circuit.gate(g).commutes_with(gate));
                if joins {
                    for &g in &prev[qi] {
                        dependencies.push((g, i));
                    }
                    open[qi].push(i);
                } else {
                    for &g in &open[qi] {
                        dependencies.push((g, i));
                    }
                    prev[qi] = std::mem::take(&mut open[qi]);
                    open[qi].push(i);
                }
            }
        }
        Self::from_dependency_pairs(n, dependencies)
    }

    fn from_dependency_pairs(n: usize, mut dependencies: Vec<(usize, usize)>) -> DependencyGraph {
        dependencies.sort_unstable();
        dependencies.dedup();
        let mut predecessors = vec![Vec::new(); n];
        let mut successors = vec![Vec::new(); n];
        for &(a, b) in &dependencies {
            predecessors[b].push(a);
            successors[a].push(b);
        }
        for list in predecessors.iter_mut().chain(successors.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        // ASAP levels: gates are indexed in program order, so predecessors
        // always have smaller indices and one pass suffices.
        let mut asap_level = vec![0usize; n];
        let mut longest = 0usize;
        for i in 0..n {
            let lvl = predecessors[i]
                .iter()
                .map(|&p| asap_level[p] + 1)
                .max()
                .unwrap_or(0);
            asap_level[i] = lvl;
            longest = longest.max(lvl + 1);
        }
        DependencyGraph {
            num_gates: n,
            dependencies,
            predecessors,
            successors,
            asap_level,
            longest_chain: longest,
        }
    }

    /// Number of gates analyzed.
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }

    /// The immediate dependency pairs `D` (sorted, deduplicated).
    pub fn dependencies(&self) -> &[(usize, usize)] {
        &self.dependencies
    }

    /// Gates that must execute immediately before gate `g`.
    pub fn predecessors(&self, g: usize) -> &[usize] {
        &self.predecessors[g]
    }

    /// Gates that must execute immediately after gate `g`.
    pub fn successors(&self, g: usize) -> &[usize] {
        &self.successors[g]
    }

    /// Gates with no predecessors (the initial front layer).
    pub fn front_layer(&self) -> Vec<usize> {
        (0..self.num_gates)
            .filter(|&g| self.predecessors[g].is_empty())
            .collect()
    }

    /// Earliest time step of gate `g` under unit durations (0-based).
    pub fn asap_level_of(&self, g: usize) -> usize {
        self.asap_level[g]
    }

    /// Length of the longest dependency chain — the paper's `T_LB`
    /// (12 for the Toffoli circuit of Fig. 5).
    pub fn longest_chain(&self) -> usize {
        self.longest_chain
    }

    /// Groups gate indices by ASAP level: `layers()[t]` can all start at
    /// `t` at the earliest. Used by layer-slicing baselines (SATMap-style).
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let mut layers = vec![Vec::new(); self.longest_chain];
        for g in 0..self.num_gates {
            layers[self.asap_level[g]].push(g);
        }
        layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Gate, GateKind};
    use crate::generators::toffoli_circuit;

    #[test]
    fn chain_and_parallel() {
        let mut c = Circuit::new(4);
        c.push(Gate::two(GateKind::Cx, 0, 1)); // g0
        c.push(Gate::two(GateKind::Cx, 2, 3)); // g1 (parallel with g0)
        c.push(Gate::two(GateKind::Cx, 1, 2)); // g2 (after both)
        let dag = DependencyGraph::new(&c);
        assert_eq!(dag.longest_chain(), 2);
        assert_eq!(dag.dependencies(), &[(0, 2), (1, 2)]);
        assert_eq!(dag.front_layer(), vec![0, 1]);
        assert_eq!(dag.successors(0), &[2]);
        assert_eq!(dag.predecessors(2), &[0, 1]);
        assert_eq!(dag.layers(), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn toffoli_longest_chain() {
        // The canonical 15-gate, 3-qubit Toffoli decomposition has a
        // longest dependency chain of 11 (the paper's Fig. 5 ancilla
        // variant has 12).
        let c = toffoli_circuit();
        let dag = DependencyGraph::new(&c);
        assert_eq!(dag.longest_chain(), 11);
    }

    #[test]
    fn empty_circuit() {
        let dag = DependencyGraph::new(&Circuit::new(3));
        assert_eq!(dag.longest_chain(), 0);
        assert!(dag.dependencies().is_empty());
        assert!(dag.front_layer().is_empty());
    }

    #[test]
    fn commutation_collapses_qaoa_chains() {
        // Three ZZ gates in a line all commute: plain chain 3, aware chain 1.
        let mut c = Circuit::new(4);
        c.push(Gate::two(GateKind::Zz(0.3), 0, 1));
        c.push(Gate::two(GateKind::Zz(0.3), 1, 2));
        c.push(Gate::two(GateKind::Zz(0.3), 2, 3));
        assert_eq!(DependencyGraph::new(&c).longest_chain(), 3);
        let aware = DependencyGraph::new_with_commutation(&c);
        assert_eq!(aware.longest_chain(), 1);
        assert!(aware.dependencies().is_empty());
    }

    #[test]
    fn commutation_keeps_real_orderings() {
        // h then cx on the same qubit do not commute; cx chains where one
        // gate's target is another's control do not commute.
        let mut c = Circuit::new(3);
        c.push(Gate::one(GateKind::H, 0));
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        let aware = DependencyGraph::new_with_commutation(&c);
        assert_eq!(aware.dependencies(), &[(0, 1), (1, 2)]);
        assert_eq!(aware.longest_chain(), 3);
    }

    #[test]
    fn commutation_allows_shared_control_cx() {
        // Two CX sharing the control commute; sharing a target commutes too.
        let mut c = Circuit::new(3);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 0, 2));
        let aware = DependencyGraph::new_with_commutation(&c);
        assert!(aware.dependencies().is_empty());
        let mut c2 = Circuit::new(3);
        c2.push(Gate::two(GateKind::Cx, 0, 2));
        c2.push(Gate::two(GateKind::Cx, 1, 2));
        let aware2 = DependencyGraph::new_with_commutation(&c2);
        assert!(aware2.dependencies().is_empty());
    }

    #[test]
    fn commutation_group_boundaries_are_barriers() {
        // zz(0,1), h(1), zz(0,1): the h blocks, so gate 2 depends on both.
        let mut c = Circuit::new(2);
        c.push(Gate::two(GateKind::Zz(0.1), 0, 1));
        c.push(Gate::one(GateKind::H, 1));
        c.push(Gate::two(GateKind::Zz(0.1), 0, 1));
        let aware = DependencyGraph::new_with_commutation(&c);
        // On qubit 1: g0 -> g1 -> g2; on qubit 0: g0 and g2 commute but g2
        // must still come after g1.
        assert!(aware.dependencies().contains(&(0, 1)));
        assert!(aware.dependencies().contains(&(1, 2)));
        assert_eq!(aware.longest_chain(), 3);
    }

    #[test]
    fn duplicate_dependency_from_shared_pair_is_deduped() {
        let mut c = Circuit::new(2);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 0));
        let dag = DependencyGraph::new(&c);
        // Both qubits induce (0,1); it must appear once.
        assert_eq!(dag.dependencies(), &[(0, 1)]);
    }
}
