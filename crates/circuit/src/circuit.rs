//! The quantum program: an ordered gate list over program qubits.

use crate::gate::{Gate, GateKind, Operands};
use std::fmt;

/// A quantum program: a sequence of one- and two-qubit gates over `Q`
/// program qubits (§II-A of the paper).
///
/// # Examples
///
/// ```
/// use olsq2_circuit::{Circuit, Gate, GateKind};
/// let mut c = Circuit::new(3);
/// c.push(Gate::one(GateKind::H, 0));
/// c.push(Gate::two(GateKind::Cx, 0, 1));
/// c.push(Gate::two(GateKind::Cx, 1, 2));
/// assert_eq!(c.num_gates(), 3);
/// assert_eq!(c.num_two_qubit_gates(), 2);
/// assert_eq!(c.logical_depth(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
    name: String,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` program qubits.
    pub fn new(num_qubits: usize) -> Circuit {
        Circuit {
            num_qubits,
            gates: Vec::new(),
            name: String::new(),
        }
    }

    /// Creates an empty, named circuit.
    pub fn with_name(num_qubits: usize, name: impl Into<String>) -> Circuit {
        Circuit {
            num_qubits,
            gates: Vec::new(),
            name: name.into(),
        }
    }

    /// The circuit's name (benchmark id), possibly empty.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the circuit's name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of program qubits `|Q|`.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Total gate count `|G|`.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of two-qubit gates `|G₂|`.
    pub fn num_two_qubit_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of single-qubit gates `|G₁|`.
    pub fn num_single_qubit_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.is_single_qubit()).count()
    }

    /// The gate list in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn gate(&self, i: usize) -> &Gate {
        &self.gates[i]
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit ≥ `num_qubits`.
    pub fn push(&mut self, gate: Gate) {
        for q in gate.operands.qubits() {
            assert!(
                (q as usize) < self.num_qubits,
                "gate qubit {q} out of range 0..{}",
                self.num_qubits
            );
        }
        self.gates.push(gate);
    }

    /// Appends all gates of `other` (qubit indices must fit).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses qubits beyond this circuit's count.
    pub fn extend_from(&mut self, other: &Circuit) {
        for g in &other.gates {
            self.push(g.clone());
        }
    }

    /// The logical depth assuming unit gate durations and unlimited
    /// connectivity — the length of the longest dependency chain, i.e. the
    /// paper's `T_LB`.
    pub fn logical_depth(&self) -> usize {
        let mut ready = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let start = g
                .operands
                .qubits()
                .map(|q| ready[q as usize])
                .max()
                .unwrap_or(0);
            let finish = start + 1;
            for q in g.operands.qubits() {
                ready[q as usize] = finish;
            }
            depth = depth.max(finish);
        }
        depth
    }

    /// The set of qubits actually touched by at least one gate.
    pub fn used_qubits(&self) -> Vec<u16> {
        let mut used = vec![false; self.num_qubits];
        for g in &self.gates {
            for q in g.operands.qubits() {
                used[q as usize] = true;
            }
        }
        (0..self.num_qubits as u16)
            .filter(|&q| used[q as usize])
            .collect()
    }

    /// Replaces every 3-gate-decomposable SWAP in the gate list by its
    /// 3-CNOT expansion; other gates are kept as-is.
    pub fn decompose_swaps(&self) -> Circuit {
        let mut out = Circuit::with_name(self.num_qubits, self.name.clone());
        for g in &self.gates {
            if let (GateKind::Swap, Operands::Two(a, b)) = (&g.kind, g.operands) {
                out.push(Gate::two(GateKind::Cx, a, b));
                out.push(Gate::two(GateKind::Cx, b, a));
                out.push(Gate::two(GateKind::Cx, a, b));
            } else {
                out.push(g.clone());
            }
        }
        out
    }

    /// The circuit with its gate order reversed (used by SABRE's
    /// bidirectional initial-mapping passes; note gate kinds are not
    /// inverted — dependency structure is what matters for layout).
    pub fn reversed(&self) -> Circuit {
        let mut out = Circuit::with_name(self.num_qubits, self.name.clone());
        for g in self.gates.iter().rev() {
            out.push(g.clone());
        }
        out
    }

    /// Gate counts keyed by mnemonic, e.g. `[("cx", 6), ("t", 7), …]`,
    /// sorted by name. Useful for reporting emitted circuits.
    pub fn gate_histogram(&self) -> Vec<(String, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for g in &self.gates {
            *map.entry(g.kind.name().to_string()).or_insert(0) += 1;
        }
        map.into_iter().collect()
    }

    /// Remaps qubit indices through `perm` (`new_qubit = perm[old_qubit]`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_qubits`.
    pub fn permute_qubits(&self, perm: &[u16]) -> Circuit {
        assert_eq!(perm.len(), self.num_qubits, "permutation length mismatch");
        let mut seen = vec![false; self.num_qubits];
        for &p in perm {
            assert!(
                (p as usize) < self.num_qubits && !seen[p as usize],
                "not a permutation"
            );
            seen[p as usize] = true;
        }
        let mut out = Circuit::with_name(self.num_qubits, self.name.clone());
        for g in &self.gates {
            let operands = match g.operands {
                Operands::One(q) => Operands::One(perm[q as usize]),
                Operands::Two(a, b) => Operands::Two(perm[a as usize], perm[b as usize]),
            };
            out.push(Gate::new(g.kind.clone(), operands));
        }
        out
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}q, {}g)",
            if self.name.is_empty() {
                "circuit"
            } else {
                &self.name
            },
            self.num_qubits,
            self.gates.len()
        )
    }
}

impl FromIterator<Gate> for Circuit {
    /// Builds a circuit sized to the largest referenced qubit.
    fn from_iter<I: IntoIterator<Item = Gate>>(iter: I) -> Circuit {
        let gates: Vec<Gate> = iter.into_iter().collect();
        let num_qubits = gates
            .iter()
            .flat_map(|g| g.operands.qubits())
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut c = Circuit::new(num_qubits);
        for g in gates {
            c.push(g);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::one(GateKind::H, 0));
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::one(GateKind::T, 2));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        c
    }

    #[test]
    fn counts() {
        let c = sample();
        assert_eq!(c.num_gates(), 4);
        assert_eq!(c.num_single_qubit_gates(), 2);
        assert_eq!(c.num_two_qubit_gates(), 2);
        assert_eq!(c.used_qubits(), vec![0, 1, 2]);
    }

    #[test]
    fn logical_depth_follows_dependencies() {
        let c = sample();
        // h(0) -> cx(0,1) -> cx(1,2); t(2) runs in parallel with the first two.
        assert_eq!(c.logical_depth(), 3);
        assert_eq!(Circuit::new(5).logical_depth(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_validates_qubits() {
        let mut c = Circuit::new(2);
        c.push(Gate::one(GateKind::H, 2));
    }

    #[test]
    fn swap_decomposition() {
        let mut c = Circuit::new(2);
        c.push(Gate::two(GateKind::Swap, 0, 1));
        let d = c.decompose_swaps();
        assert_eq!(d.num_gates(), 3);
        assert!(d.gates().iter().all(|g| g.kind == GateKind::Cx));
    }

    #[test]
    fn permutation_remaps() {
        let c = sample();
        let p = c.permute_qubits(&[2, 0, 1]);
        assert_eq!(p.gate(0).operands, Operands::One(2));
        assert_eq!(p.gate(1).operands, Operands::Two(2, 0));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permutation_validated() {
        let _ = sample().permute_qubits(&[0, 0, 1]);
    }

    #[test]
    fn reversed_reverses_order() {
        let c = sample();
        let r = c.reversed();
        assert_eq!(r.num_gates(), c.num_gates());
        assert_eq!(r.gate(0), c.gate(c.num_gates() - 1));
        assert_eq!(r.reversed(), c);
    }

    #[test]
    fn histogram_counts_by_kind() {
        let c = sample();
        let h = c.gate_histogram();
        assert_eq!(h, vec![("cx".into(), 2), ("h".into(), 1), ("t".into(), 1)]);
    }

    #[test]
    fn from_iterator_sizes_to_max_qubit() {
        let c: Circuit = vec![Gate::two(GateKind::Cx, 1, 4)].into_iter().collect();
        assert_eq!(c.num_qubits(), 5);
    }
}
