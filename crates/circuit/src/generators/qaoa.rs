//! QAOA benchmark circuits.
//!
//! The paper's primary stress workload: the phase-splitting operator of a
//! QAOA round for MaxCut on a random 3-regular graph — one two-qubit ZZ
//! interaction per graph edge, so `QAOA(n / 3n/2)` in the tables (e.g.
//! `QAOA(16/24)`).

use super::graphs::random_regular_graph;
use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// The QAOA phase-splitting operator for a given interaction graph: one
/// `ZZ(γ)` gate per edge, in edge order.
///
/// # Panics
///
/// Panics if an edge references a vertex ≥ `n`.
pub fn qaoa_from_graph(n: usize, edges: &[(u16, u16)], gamma: f64) -> Circuit {
    let mut c = Circuit::with_name(n, format!("QAOA({}/{})", n, edges.len()));
    for &(a, b) in edges {
        c.push(Gate::two(GateKind::Zz(gamma), a, b));
    }
    c
}

/// A QAOA phase-splitting circuit for a seeded random 3-regular graph on
/// `n` vertices — the benchmark family of Fig. 1 and Tables I–II.
///
/// # Panics
///
/// Panics if `n` is odd or below 4 (no 3-regular graph exists).
///
/// # Examples
///
/// ```
/// use olsq2_circuit::generators::qaoa_circuit;
/// let c = qaoa_circuit(16, 42);
/// assert_eq!(c.num_qubits(), 16);
/// assert_eq!(c.num_gates(), 24);
/// assert_eq!(c.name(), "QAOA(16/24)");
/// ```
pub fn qaoa_circuit(n: usize, seed: u64) -> Circuit {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "3-regular graphs need even n ≥ 4"
    );
    let edges = random_regular_graph(n, 3, seed);
    qaoa_from_graph(n, &edges, 0.7)
}

/// A full QAOA round: the phase splitting operator followed by the mixing
/// operator (an `Rx(β)` on every qubit). Useful for workloads that also
/// contain single-qubit gates.
pub fn qaoa_round(n: usize, seed: u64) -> Circuit {
    let mut c = qaoa_circuit(n, seed);
    let m = c.num_gates();
    for q in 0..n as u16 {
        c.push(Gate::one(GateKind::Rx(0.35), q));
    }
    c.set_name(format!("QAOA-round({}/{})", n, m + n));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DependencyGraph;

    #[test]
    fn gate_count_is_edge_count() {
        for n in [8usize, 16, 20, 24] {
            let c = qaoa_circuit(n, 5);
            assert_eq!(c.num_gates(), 3 * n / 2);
            assert_eq!(c.num_two_qubit_gates(), c.num_gates());
        }
    }

    #[test]
    fn chain_is_short_for_regular_graphs() {
        // Every vertex has degree 3, so no qubit sees more than 3 gates; a
        // chain alternates qubits, staying well below the gate count.
        let c = qaoa_circuit(16, 11);
        let dag = DependencyGraph::new(&c);
        assert!(dag.longest_chain() <= 9, "chain {}", dag.longest_chain());
        assert!(dag.longest_chain() >= 3);
    }

    #[test]
    fn round_appends_mixers() {
        let c = qaoa_round(8, 1);
        assert_eq!(c.num_single_qubit_gates(), 8);
        assert_eq!(c.num_two_qubit_gates(), 12);
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(qaoa_circuit(16, 9), qaoa_circuit(16, 9));
        assert_ne!(qaoa_circuit(16, 9), qaoa_circuit(16, 10));
    }
}
