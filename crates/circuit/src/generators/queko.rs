//! QUEKO benchmarks: circuits with *known-optimal* depth and zero-SWAP
//! layouts (Tan & Cong, "Optimality study of existing quantum computing
//! layout synthesis tools").
//!
//! Construction: gates are placed cycle by cycle directly on *physical*
//! qubits of the target device, so the circuit is executable in exactly
//! `depth` steps with no SWAPs. A backbone chain of gates sharing a qubit
//! across consecutive cycles pins the longest dependency chain to `depth`
//! (a chain can contain at most one gate per cycle, so no chain is
//! longer). Finally the qubit labels are scrambled by a hidden random
//! permutation — a synthesizer must rediscover (any) zero-SWAP embedding.
//! Table III's `QUEKO(54/…)` rows and the optimality check of §IV-C use
//! these.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use olsq2_prng::Rng;

/// A generated QUEKO instance.
#[derive(Debug, Clone)]
pub struct QuekoCircuit {
    /// The scrambled benchmark circuit (program qubits).
    pub circuit: Circuit,
    /// The optimal depth by construction (equals the requested depth).
    pub optimal_depth: usize,
    /// The hidden embedding: `mapping[program_qubit] = physical_qubit`
    /// under which the circuit runs SWAP-free at `optimal_depth`.
    pub hidden_mapping: Vec<u16>,
}

/// Generates a QUEKO benchmark on a device given by `(num_qubits, edges)`.
///
/// Each cycle receives roughly `target_gates / depth` gates — two-qubit
/// gates on disjoint device edges plus single-qubit fillers — and one
/// backbone gate chaining into the previous cycle. The returned gate count
/// is close to, and never above, `target_gates` rounded to the cycle
/// structure.
///
/// # Panics
///
/// Panics if `depth == 0`, the device has no edges, or `target_gates <
/// depth` (each cycle needs its backbone gate).
///
/// # Examples
///
/// ```
/// use olsq2_circuit::generators::queko_circuit;
/// // A 2x2 grid device.
/// let edges = [(0u16, 1), (0, 2), (1, 3), (2, 3)];
/// let q = queko_circuit(4, &edges, 5, 15, 7);
/// assert_eq!(q.optimal_depth, 5);
/// assert!(q.circuit.num_gates() <= 15);
/// assert_eq!(q.circuit.logical_depth(), 5);
/// ```
pub fn queko_circuit(
    num_qubits: usize,
    edges: &[(u16, u16)],
    depth: usize,
    target_gates: usize,
    seed: u64,
) -> QuekoCircuit {
    assert!(depth > 0, "depth must be positive");
    assert!(!edges.is_empty(), "device must have couplers");
    assert!(
        target_gates >= depth,
        "need at least one gate per cycle for the backbone"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let per_cycle_base = target_gates / depth;
    let mut remainder = target_gates % depth;

    let mut adjacency: Vec<Vec<u16>> = vec![Vec::new(); num_qubits];
    for &(a, b) in edges {
        adjacency[a as usize].push(b);
        adjacency[b as usize].push(a);
    }

    // Physical-space circuit.
    let mut phys = Circuit::new(num_qubits);
    // Backbone cursor: the qubit the chain currently sits on.
    let mut cursor: u16 = rng.gen_range(0..num_qubits as u16);
    for _ in 0..depth {
        let quota = per_cycle_base + usize::from(remainder > 0);
        remainder = remainder.saturating_sub(1);
        let mut busy = vec![false; num_qubits];

        // 1. Backbone gate: must touch `cursor` to chain the dependency.
        let neighbors = &adjacency[cursor as usize];
        if !neighbors.is_empty() && rng.gen_bool(0.75) {
            let next = neighbors[rng.gen_range(0..neighbors.len())];
            phys.push(Gate::two(GateKind::Cx, cursor, next));
            busy[cursor as usize] = true;
            busy[next as usize] = true;
            // Randomly walk the backbone.
            if rng.gen_bool(0.5) {
                cursor = next;
            }
        } else {
            phys.push(Gate::one(GateKind::T, cursor));
            busy[cursor as usize] = true;
        }

        // 2. Fill with two-qubit gates on a random matching of free edges.
        let mut order: Vec<usize> = (0..edges.len()).collect();
        rng.shuffle(&mut order);
        let mut placed = 1usize;
        for ei in order {
            if placed >= quota {
                break;
            }
            let (a, b) = edges[ei];
            if busy[a as usize] || busy[b as usize] {
                continue;
            }
            // Keep roughly a 40/60 two-/single-qubit mix like the original
            // BNTF suites.
            if rng.gen_bool(0.55) {
                continue;
            }
            phys.push(Gate::two(GateKind::Cx, a, b));
            busy[a as usize] = true;
            busy[b as usize] = true;
            placed += 1;
        }

        // 3. Fill the remaining quota with single-qubit gates on free qubits.
        let mut free: Vec<u16> = (0..num_qubits as u16)
            .filter(|&q| !busy[q as usize])
            .collect();
        rng.shuffle(&mut free);
        for q in free {
            if placed >= quota {
                break;
            }
            phys.push(Gate::one(GateKind::T, q));
            busy[q as usize] = true;
            placed += 1;
        }
    }

    // Scramble: program qubit q runs on physical qubit hidden_mapping[q].
    // The physical circuit uses physical indices; applying the inverse
    // permutation turns them into program indices.
    let mut hidden_mapping: Vec<u16> = (0..num_qubits as u16).collect();
    rng.shuffle(&mut hidden_mapping);
    let mut inverse = vec![0u16; num_qubits];
    for (program, &physical) in hidden_mapping.iter().enumerate() {
        inverse[physical as usize] = program as u16;
    }
    let mut circuit = phys.permute_qubits(&inverse);
    circuit.set_name(format!("QUEKO({}/{})", num_qubits, circuit.num_gates()));

    QuekoCircuit {
        circuit,
        optimal_depth: depth,
        hidden_mapping,
    }
}

/// The BNTF ("benchmarks for near-term feasibility") preset of the QUEKO
/// suite: the depth/gate-count pairs of the paper's Table III rows, scaled
/// by the device size. `depth_index` 0..=4 selects depths 5/15/25/35/45
/// with gate counts matching the paper's Sycamore (54-qubit) and Aspen-4
/// (16-qubit) suites proportionally.
///
/// # Panics
///
/// Panics if `depth_index > 4`.
///
/// # Examples
///
/// ```
/// use olsq2_circuit::generators::queko_bntf;
/// let edges = [(0u16, 1), (1, 2), (2, 3), (3, 0)];
/// let q = queko_bntf(4, &edges, 0, 7);
/// assert_eq!(q.optimal_depth, 5);
/// ```
pub fn queko_bntf(
    num_qubits: usize,
    edges: &[(u16, u16)],
    depth_index: usize,
    seed: u64,
) -> QuekoCircuit {
    assert!(depth_index <= 4, "BNTF preset has depths 5..=45");
    let depth = 5 + 10 * depth_index;
    // The paper's suites average ≈ 38.4 gates/cycle on 54 qubits and
    // ≈ 7.3 on 16 — about 0.6 gates per qubit per cycle, capped to
    // what fits.
    let per_cycle = ((num_qubits as f64) * 0.6).max(1.0) as usize;
    let target = per_cycle * depth;
    queko_circuit(num_qubits, edges, depth, target, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DependencyGraph;
    use crate::gate::Operands;

    fn grid4_edges() -> Vec<(u16, u16)> {
        vec![(0, 1), (0, 2), (1, 3), (2, 3)]
    }

    #[test]
    fn depth_is_exactly_as_requested() {
        for depth in [1usize, 3, 5, 10] {
            let q = queko_circuit(4, &grid4_edges(), depth, depth * 3, 42);
            assert_eq!(q.circuit.logical_depth(), depth);
            let dag = DependencyGraph::new(&q.circuit);
            assert_eq!(dag.longest_chain(), depth);
        }
    }

    #[test]
    fn hidden_mapping_executes_swap_free() {
        let edges = grid4_edges();
        let q = queko_circuit(4, &edges, 6, 18, 3);
        // Map every program qubit through the hidden embedding; every
        // two-qubit gate must land on a device edge.
        for g in q.circuit.gates() {
            if let Operands::Two(a, b) = g.operands {
                let (pa, pb) = (q.hidden_mapping[a as usize], q.hidden_mapping[b as usize]);
                let key = (pa.min(pb), pa.max(pb));
                assert!(edges.contains(&key), "gate {g} not on an edge");
            }
        }
    }

    #[test]
    fn gate_count_close_to_target() {
        let q = queko_circuit(4, &grid4_edges(), 10, 30, 9);
        assert!(q.circuit.num_gates() <= 30);
        assert!(q.circuit.num_gates() >= 10, "at least the backbone");
    }

    #[test]
    fn deterministic_by_seed() {
        let a = queko_circuit(4, &grid4_edges(), 5, 15, 1);
        let b = queko_circuit(4, &grid4_edges(), 5, 15, 1);
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.hidden_mapping, b.hidden_mapping);
    }

    #[test]
    fn bntf_presets_scale_with_depth_index() {
        let edges = grid4_edges();
        let mut last_gates = 0;
        for idx in 0..=4 {
            let q = queko_bntf(4, &edges, idx, 11);
            assert_eq!(q.optimal_depth, 5 + 10 * idx);
            assert_eq!(q.circuit.logical_depth(), q.optimal_depth);
            assert!(q.circuit.num_gates() >= last_gates);
            last_gates = q.circuit.num_gates();
        }
    }
}
