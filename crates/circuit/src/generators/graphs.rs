//! Random graph generation for benchmark circuits.
//!
//! The paper's QAOA benchmarks are phase-splitting operators for *random
//! 3-regular graphs* (generated with networkx in the original). Here the
//! configuration (pairing) model with rejection sampling gives the same
//! distribution family, seeded for reproducibility.

use olsq2_prng::Rng;

/// Generates a simple `degree`-regular graph on `n` vertices via the
/// configuration model with rejection (no self-loops, no multi-edges).
///
/// # Panics
///
/// Panics if `n * degree` is odd, `degree ≥ n`, or `n == 0` — no regular
/// graph exists in those cases.
///
/// # Examples
///
/// ```
/// use olsq2_circuit::generators::random_regular_graph;
/// let edges = random_regular_graph(16, 3, 42);
/// assert_eq!(edges.len(), 24); // 3·16/2
/// ```
pub fn random_regular_graph(n: usize, degree: usize, seed: u64) -> Vec<(u16, u16)> {
    assert!(n > 0, "graph must have vertices");
    assert!(degree < n, "degree must be below the vertex count");
    assert!((n * degree).is_multiple_of(2), "n·degree must be even");
    let mut rng = Rng::seed_from_u64(seed);
    'retry: loop {
        // Stubs: each vertex appears `degree` times.
        let mut stubs: Vec<u16> = (0..n as u16)
            .flat_map(|v| std::iter::repeat_n(v, degree))
            .collect();
        rng.shuffle(&mut stubs);
        let mut edges: Vec<(u16, u16)> = Vec::with_capacity(n * degree / 2);
        let mut seen = std::collections::HashSet::new();
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b {
                continue 'retry;
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                continue 'retry;
            }
            edges.push(key);
        }
        edges.sort_unstable();
        return edges;
    }
}

/// Generates a random simple graph with `n` vertices and exactly `m` edges
/// (Erdős–Rényi G(n, m)), used for auxiliary workloads.
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges.
pub fn random_gnm_graph(n: usize, m: usize, seed: u64) -> Vec<(u16, u16)> {
    let max = n * (n - 1) / 2;
    assert!(m <= max, "too many edges requested");
    let mut rng = Rng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let a = rng.gen_range(0..n as u16);
        let b = rng.gen_range(0..n as u16);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            edges.push(key);
        }
    }
    edges.sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degrees(n: usize, edges: &[(u16, u16)]) -> Vec<usize> {
        let mut d = vec![0usize; n];
        for &(a, b) in edges {
            d[a as usize] += 1;
            d[b as usize] += 1;
        }
        d
    }

    #[test]
    fn three_regular_is_regular_and_simple() {
        for n in [4usize, 8, 16, 20, 24] {
            let edges = random_regular_graph(n, 3, 7);
            assert_eq!(edges.len(), 3 * n / 2);
            assert!(degrees(n, &edges).iter().all(|&d| d == 3));
            let mut dedup = edges.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), edges.len(), "multi-edge found");
            assert!(edges.iter().all(|&(a, b)| a != b), "self-loop found");
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = random_regular_graph(16, 3, 1);
        let b = random_regular_graph(16, 3, 1);
        let c = random_regular_graph(16, 3, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_has_exact_edge_count() {
        let edges = random_gnm_graph(10, 15, 3);
        assert_eq!(edges.len(), 15);
        let mut dedup = edges.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 15);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_stub_count_rejected() {
        let _ = random_regular_graph(5, 3, 0);
    }
}
