//! Quantum Fourier transform benchmark circuits.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use std::f64::consts::PI;

/// The textbook QFT on `n` qubits with controlled-phase gates kept as
/// native two-qubit `cp` gates: `n` Hadamards plus `n(n-1)/2` CPs.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use olsq2_circuit::generators::qft_circuit;
/// let c = qft_circuit(8);
/// assert_eq!(c.num_gates(), 8 + 28);
/// ```
pub fn qft_circuit(n: usize) -> Circuit {
    assert!(n > 0);
    let mut c = Circuit::new(n);
    for i in 0..n as u16 {
        c.push(Gate::one(GateKind::H, i));
        for j in (i + 1)..n as u16 {
            let angle = PI / f64::from(1u32 << (j - i));
            c.push(Gate::two(GateKind::Cp(angle), j, i));
        }
    }
    let (q, g) = (c.num_qubits(), c.num_gates());
    c.set_name(format!("QFT({q}/{g})"));
    c
}

/// The QFT with every controlled-phase decomposed into the CX/Rz basis
/// (`cp(λ) = rz(λ/2)·cx·rz(−λ/2)·cx·rz(λ/2)`): `n + 5·n(n-1)/2` gates.
/// This is the form comparable to the paper's `QFT(8/106)` row (theirs is
/// a hand-optimized file; ours is the uniform decomposition with 148).
pub fn qft_decomposed(n: usize) -> Circuit {
    let base = qft_circuit(n);
    let mut c = Circuit::new(n);
    for gate in base.gates() {
        match (&gate.kind, gate.operands) {
            (GateKind::Cp(angle), crate::gate::Operands::Two(ctrl, tgt)) => {
                c.push(Gate::one(GateKind::Rz(angle / 2.0), ctrl));
                c.push(Gate::two(GateKind::Cx, ctrl, tgt));
                c.push(Gate::one(GateKind::Rz(-angle / 2.0), tgt));
                c.push(Gate::two(GateKind::Cx, ctrl, tgt));
                c.push(Gate::one(GateKind::Rz(angle / 2.0), tgt));
            }
            _ => c.push(gate.clone()),
        }
    }
    let (q, g) = (c.num_qubits(), c.num_gates());
    c.set_name(format!("QFT({q}/{g})"));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DependencyGraph;

    #[test]
    fn qft_sizes() {
        for n in [2usize, 4, 8] {
            let c = qft_circuit(n);
            assert_eq!(c.num_gates(), n + n * (n - 1) / 2);
            assert_eq!(c.num_two_qubit_gates(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn decomposed_qft_sizes() {
        let c = qft_decomposed(8);
        assert_eq!(c.num_gates(), 8 + 5 * 28);
        assert_eq!(c.num_two_qubit_gates(), 2 * 28);
        assert_eq!(c.name(), "QFT(8/148)");
    }

    #[test]
    fn qft_is_dense_in_dependencies() {
        // Every pair of qubits interacts, so the chain is long relative to n.
        let c = qft_circuit(6);
        let dag = DependencyGraph::new(&c);
        assert!(dag.longest_chain() >= 2 * 6 - 2);
    }
}
