//! Benchmark circuit generators: every workload family the paper
//! evaluates, generated from seeds instead of shipped files.
//!
//! * [`qaoa_circuit`] — QAOA phase splitting for random 3-regular graphs
//!   (Fig. 1, Tables I–IV)
//! * [`queko_circuit`] — known-optimal-depth QUEKO instances (Table III/IV)
//! * [`qft_circuit`] / [`qft_decomposed`] — quantum Fourier transform
//! * [`tof_circuit`] / [`barenco_tof_circuit`] — multi-controlled Toffoli
//!   ladders
//! * [`ising_circuit`] — Trotterized Ising evolution
//! * [`ripple_adder`] / [`ghz_circuit`] / [`vqe_ansatz`] — further Qiskit-style workloads
//! * [`random_regular_graph`] / [`random_gnm_graph`] — interaction graphs

mod adders;
mod arithmetic;
mod graphs;
mod qaoa;
mod qft;
mod queko;

pub use adders::{ghz_circuit, ripple_adder, vqe_ansatz};
pub use arithmetic::{
    barenco_tof_circuit, ising_circuit, push_toffoli, tof_circuit, toffoli_circuit,
};
pub use graphs::{random_gnm_graph, random_regular_graph};
pub use qaoa::{qaoa_circuit, qaoa_from_graph, qaoa_round};
pub use qft::{qft_circuit, qft_decomposed};
pub use queko::{queko_bntf, queko_circuit, QuekoCircuit};
