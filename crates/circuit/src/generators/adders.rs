//! Arithmetic adder circuits and entangled-state preparation — additional
//! workloads of the kind the paper draws from IBM Qiskit's benchmark set.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use crate::generators::arithmetic::push_toffoli;

/// Cuccaro–Draper–Kutin–Moulton ripple-carry adder on two `n`-bit
/// registers plus carry-in/out: `2n + 2` qubits.
///
/// Layout: `cin = 0`, `a_i = 1 + 2i`, `b_i = 2 + 2i`, `cout = 2n + 1`.
/// The MAJ/UMA ladders are expanded with Toffolis in the 15-gate
/// decomposition, so the whole circuit is in the 1/2-qubit IR.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use olsq2_circuit::generators::ripple_adder;
/// let c = ripple_adder(2);
/// assert_eq!(c.num_qubits(), 6);
/// assert!(c.num_gates() > 20);
/// ```
pub fn ripple_adder(n: usize) -> Circuit {
    assert!(n > 0);
    let num_qubits = 2 * n + 2;
    let mut c = Circuit::new(num_qubits);
    let a = |i: usize| (1 + 2 * i) as u16;
    let b = |i: usize| (2 + 2 * i) as u16;
    let cin = 0u16;
    let cout = (2 * n + 1) as u16;

    // MAJ(c, b, a): cx a,b; cx a,c; ccx c,b,a
    let maj = |c_: &mut Circuit, x: u16, y: u16, z: u16| {
        c_.push(Gate::two(GateKind::Cx, z, y));
        c_.push(Gate::two(GateKind::Cx, z, x));
        push_toffoli(c_, x, y, z);
    };
    maj(&mut c, cin, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.push(Gate::two(GateKind::Cx, a(n - 1), cout));
    // UMA(c, b, a): ccx c,b,a; cx a,c; cx c,b
    let uma = |c_: &mut Circuit, x: u16, y: u16, z: u16| {
        push_toffoli(c_, x, y, z);
        c_.push(Gate::two(GateKind::Cx, z, x));
        c_.push(Gate::two(GateKind::Cx, x, y));
    };
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    let (q, g) = (c.num_qubits(), c.num_gates());
    c.set_name(format!("adder_{n}({q},{g})"));
    c
}

/// GHZ-state preparation: one Hadamard plus a CNOT fan chain — a
/// maximally connectivity-hungry but SWAP-friendly workload.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ghz_circuit(n: usize) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::with_name(n, format!("GHZ({n})"));
    c.push(Gate::one(GateKind::H, 0));
    for q in 0..(n - 1) as u16 {
        c.push(Gate::two(GateKind::Cx, q, q + 1));
    }
    c
}

/// A hardware-efficient variational ansatz: `layers` rounds of per-qubit
/// `Ry` rotations followed by a CNOT entangling ladder. Common in VQE
/// workloads; dependencies are dense like the paper's arithmetic suite.
///
/// # Panics
///
/// Panics if `n < 2` or `layers == 0`.
pub fn vqe_ansatz(n: usize, layers: usize) -> Circuit {
    assert!(n >= 2 && layers > 0);
    let mut c = Circuit::new(n);
    for l in 0..layers {
        for q in 0..n as u16 {
            c.push(Gate::one(GateKind::Ry(0.1 + 0.05 * l as f64), q));
        }
        for q in 0..(n - 1) as u16 {
            c.push(Gate::two(GateKind::Cx, q, q + 1));
        }
    }
    let (q, g) = (c.num_qubits(), c.num_gates());
    c.set_name(format!("vqe_{n}x{layers}({q},{g})"));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DependencyGraph;

    #[test]
    fn adder_structure() {
        for n in 1..=4 {
            let c = ripple_adder(n);
            assert_eq!(c.num_qubits(), 2 * n + 2);
            // n MAJ + n UMA blocks of (2 CX + 15) plus the carry CX.
            assert_eq!(c.num_gates(), 2 * n * 17 + 1);
            let dag = DependencyGraph::new(&c);
            assert!(dag.longest_chain() > 4 * n);
        }
    }

    #[test]
    fn ghz_is_a_chain() {
        let c = ghz_circuit(5);
        assert_eq!(c.num_gates(), 5);
        let dag = DependencyGraph::new(&c);
        assert_eq!(dag.longest_chain(), 5); // fully sequential
    }

    #[test]
    fn vqe_counts() {
        let c = vqe_ansatz(4, 3);
        assert_eq!(c.num_gates(), 3 * (4 + 3));
        assert_eq!(c.num_two_qubit_gates(), 9);
    }
}
