//! Arithmetic benchmark circuits: Toffoli decompositions, multi-controlled
//! Toffoli ladders (`tof_n`, `barenco_tof_n`) and Ising-model simulation —
//! the non-QAOA circuits of Tables III–IV.
//!
//! The paper pulls these from the Qiskit/Nam benchmark files; here they are
//! generated from the standard constructions. Gate counts differ slightly
//! from the hand-optimized files (ours come from uniform decompositions),
//! which DESIGN.md documents; table rows are labeled with actual counts.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// Appends the canonical 15-gate Clifford+T decomposition of a Toffoli
/// gate with controls `a`, `b` and target `t`.
pub fn push_toffoli(c: &mut Circuit, a: u16, b: u16, t: u16) {
    use GateKind::*;
    c.push(Gate::one(H, t));
    c.push(Gate::two(Cx, b, t));
    c.push(Gate::one(Tdg, t));
    c.push(Gate::two(Cx, a, t));
    c.push(Gate::one(T, t));
    c.push(Gate::two(Cx, b, t));
    c.push(Gate::one(Tdg, t));
    c.push(Gate::two(Cx, a, t));
    c.push(Gate::one(T, b));
    c.push(Gate::one(T, t));
    c.push(Gate::one(H, t));
    c.push(Gate::two(Cx, a, b));
    c.push(Gate::one(T, a));
    c.push(Gate::one(Tdg, b));
    c.push(Gate::two(Cx, a, b));
}

/// The 3-qubit Toffoli gate as a standalone circuit (cf. the paper's
/// Fig. 2 example workload).
pub fn toffoli_circuit() -> Circuit {
    let mut c = Circuit::with_name(3, "toffoli");
    push_toffoli(&mut c, 0, 1, 2);
    c
}

/// `tof_n`: an `n`-controlled Toffoli built as a V-chain ladder with
/// `n - 2` ancilla qubits, each Toffoli in the 15-gate decomposition.
///
/// Qubit layout: controls `0..n`, target `n`, ancillas `n+1..2n-1`.
/// Sizes: `2n - 1` qubits and `15·(2(n-2)+1)` gates — e.g. `tof_4` has
/// 7 qubits (matching the paper's row) and 75 gates (the paper's
/// hand-optimized file has 55).
///
/// # Panics
///
/// Panics if `num_controls < 2`.
pub fn tof_circuit(num_controls: usize) -> Circuit {
    assert!(num_controls >= 2);
    let n = num_controls as u16;
    let target = n;
    let ancilla = |i: u16| n + 1 + i; // n-2 ancillas
    let num_qubits = 2 * num_controls - 1;
    let mut c = Circuit::new(num_qubits);
    if num_controls == 2 {
        push_toffoli(&mut c, 0, 1, target);
        c.set_name(format!("tof_2({},{})", c.num_qubits(), c.num_gates()));
        return c;
    }
    // Compute AND chain into ancillas.
    push_toffoli(&mut c, 0, 1, ancilla(0));
    for i in 2..n - 1 {
        push_toffoli(&mut c, i, ancilla(i - 2), ancilla(i - 1));
    }
    // Final Toffoli onto the target.
    push_toffoli(&mut c, n - 1, ancilla(n - 3), target);
    // Uncompute the chain.
    for i in (2..n - 1).rev() {
        push_toffoli(&mut c, i, ancilla(i - 2), ancilla(i - 1));
    }
    push_toffoli(&mut c, 0, 1, ancilla(0));
    let (q, g) = (c.num_qubits(), c.num_gates());
    c.set_name(format!("tof_{num_controls}({q},{g})"));
    c
}

/// `barenco_tof_n`: the Barenco-style ladder — the same V-chain but with
/// the relative-phase corrections spelled out, costing one extra
/// `CX`+`T`+`T†` triplet around every ladder Toffoli. Matches the
/// benchmark family's property of being noticeably larger than `tof_n`
/// on the same qubit count.
///
/// # Panics
///
/// Panics if `num_controls < 2`.
pub fn barenco_tof_circuit(num_controls: usize) -> Circuit {
    assert!(num_controls >= 2);
    let base = tof_circuit(num_controls);
    let mut c = Circuit::new(base.num_qubits());
    // Interleave phase-correction triplets after each Toffoli block.
    let gates = base.gates();
    for (i, chunk) in gates.chunks(15).enumerate() {
        for g in chunk {
            c.push(g.clone());
        }
        // Correction on the block's control pair (first two operands of the
        // block's final CX).
        if let crate::gate::Operands::Two(a, b) = chunk[chunk.len() - 1].operands {
            c.push(Gate::one(GateKind::T, a));
            c.push(Gate::two(GateKind::Cx, a, b));
            c.push(Gate::one(GateKind::Tdg, b));
            if i % 2 == 1 {
                c.push(Gate::two(GateKind::Cx, a, b));
            }
        }
    }
    let (q, g) = (c.num_qubits(), c.num_gates());
    c.set_name(format!("barenco_tof_{num_controls}({q},{g})"));
    c
}

/// Trotterized 1-D transverse-field Ising evolution on `n` qubits: an
/// initial Hadamard layer, then `rounds` of nearest-neighbor `ZZ`
/// interactions followed by `Rx` mixers. `ising(10, 25)` gives 485 gates,
/// the scale of the paper's `ising_10(10,480)` row.
///
/// # Panics
///
/// Panics if `n < 2` or `rounds == 0`.
pub fn ising_circuit(n: usize, rounds: usize) -> Circuit {
    assert!(n >= 2 && rounds > 0);
    let mut c = Circuit::new(n);
    for q in 0..n as u16 {
        c.push(Gate::one(GateKind::H, q));
    }
    for _ in 0..rounds {
        for q in 0..(n - 1) as u16 {
            c.push(Gate::two(GateKind::Zz(0.31), q, q + 1));
        }
        for q in 0..n as u16 {
            c.push(Gate::one(GateKind::Rx(0.17), q));
        }
    }
    let (q, g) = (c.num_qubits(), c.num_gates());
    c.set_name(format!("ising_{n}({q},{g})"));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DependencyGraph;

    #[test]
    fn toffoli_is_fifteen_gates() {
        let c = toffoli_circuit();
        assert_eq!(c.num_gates(), 15);
        assert_eq!(c.num_two_qubit_gates(), 6);
        assert_eq!(c.num_qubits(), 3);
    }

    #[test]
    fn tof_sizes() {
        let t4 = tof_circuit(4);
        assert_eq!(t4.num_qubits(), 7); // matches the paper's tof_4 row
        assert_eq!(t4.num_gates(), 15 * 5);
        let t5 = tof_circuit(5);
        assert_eq!(t5.num_qubits(), 9); // matches the paper's tof_5 row
        assert_eq!(t5.num_gates(), 15 * 7);
    }

    #[test]
    fn barenco_is_larger_than_tof() {
        for n in [4usize, 5] {
            let plain = tof_circuit(n);
            let barenco = barenco_tof_circuit(n);
            assert_eq!(plain.num_qubits(), barenco.num_qubits());
            assert!(barenco.num_gates() > plain.num_gates());
        }
    }

    #[test]
    fn tof_2_is_plain_toffoli() {
        let c = tof_circuit(2);
        assert_eq!(c.num_gates(), 15);
        assert_eq!(c.num_qubits(), 3);
    }

    #[test]
    fn ising_sizes() {
        let c = ising_circuit(10, 25);
        assert_eq!(c.num_gates(), 10 + 25 * (9 + 10));
        assert_eq!(c.num_qubits(), 10);
        // Depth grows with rounds.
        let dag = DependencyGraph::new(&c);
        assert!(dag.longest_chain() >= 50);
    }

    #[test]
    fn ladders_are_valid_circuits() {
        for n in 2..=6 {
            let c = tof_circuit(n);
            let dag = DependencyGraph::new(&c);
            assert!(dag.longest_chain() > 0);
            assert!(dag.longest_chain() <= c.num_gates());
        }
    }
}
