//! Quantum gates: kinds and operands.
//!
//! Layout synthesis only distinguishes single- from two-qubit gates
//! (§II-A), but the IR keeps real gate kinds so circuits can be parsed
//! from and written back to OpenQASM and so SWAP insertions can be
//! decomposed into hardware gates.

use std::fmt;

/// The kind of a gate, covering the OpenQASM 2.0 `qelib1` subset that the
/// paper's benchmark circuits use.
#[derive(Debug, Clone, PartialEq)]
pub enum GateKind {
    /// Identity.
    Id,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S.
    S,
    /// S†.
    Sdg,
    /// T gate.
    T,
    /// T†.
    Tdg,
    /// X-rotation by the stored angle (radians).
    Rx(f64),
    /// Y-rotation.
    Ry(f64),
    /// Z-rotation.
    Rz(f64),
    /// Generic single-qubit U(θ, φ, λ).
    U(f64, f64, f64),
    /// Controlled-NOT.
    Cx,
    /// Controlled-Z.
    Cz,
    /// Controlled-phase by the stored angle.
    Cp(f64),
    /// Two-qubit ZZ interaction `exp(-iθ Z⊗Z/2)` (QAOA phase splitting).
    Zz(f64),
    /// SWAP (inserted by layout synthesis or present in input).
    Swap,
    /// Any other named gate with the given operand count (1 or 2).
    Other {
        /// Gate name as it appears in QASM.
        name: Box<str>,
        /// Parameters, if any.
        params: Vec<f64>,
    },
}

impl GateKind {
    /// The QASM mnemonic for this kind.
    pub fn name(&self) -> &str {
        match self {
            GateKind::Id => "id",
            GateKind::H => "h",
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::S => "s",
            GateKind::Sdg => "sdg",
            GateKind::T => "t",
            GateKind::Tdg => "tdg",
            GateKind::Rx(_) => "rx",
            GateKind::Ry(_) => "ry",
            GateKind::Rz(_) => "rz",
            GateKind::U(..) => "u3",
            GateKind::Cx => "cx",
            GateKind::Cz => "cz",
            GateKind::Cp(_) => "cp",
            GateKind::Zz(_) => "rzz",
            GateKind::Swap => "swap",
            GateKind::Other { name, .. } => name,
        }
    }

    /// The gate parameters (angles), if any.
    pub fn params(&self) -> Vec<f64> {
        match self {
            GateKind::Rx(a)
            | GateKind::Ry(a)
            | GateKind::Rz(a)
            | GateKind::Cp(a)
            | GateKind::Zz(a) => vec![*a],
            GateKind::U(a, b, c) => vec![*a, *b, *c],
            GateKind::Other { params, .. } => params.clone(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let joined: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
            write!(f, "{}({})", self.name(), joined.join(","))
        }
    }
}

/// The single-qubit algebra a gate acts in on one of its operand wires,
/// used for commutation analysis (gate absorption, Tan & Cong ICCAD'21):
/// two gates sharing a wire commute if they act in the *same* basis on
/// every shared wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireBasis {
    /// Diagonal in the computational basis (Z-type): `Rz`, `Z`, `S`, `T`,
    /// `CZ`/`CP`/`ZZ` on either wire, `CX` on its control.
    Z,
    /// X-type: `Rx`, `X`, `CX` on its target.
    X,
}

impl GateKind {
    /// The basis this kind acts in on operand `index` (0 = first), or
    /// `None` when the action is not confined to a commuting family
    /// (e.g. `H`, `Ry`, `U`, `Swap`, unknown gates).
    pub fn wire_basis(&self, index: usize) -> Option<WireBasis> {
        match self {
            GateKind::Id => None, // identity commutes with everything, but
            // treating it as opaque is harmless and keeps the rule simple.
            GateKind::Z
            | GateKind::S
            | GateKind::Sdg
            | GateKind::T
            | GateKind::Tdg
            | GateKind::Rz(_)
            | GateKind::Cz
            | GateKind::Cp(_)
            | GateKind::Zz(_) => Some(WireBasis::Z),
            GateKind::X | GateKind::Rx(_) => Some(WireBasis::X),
            GateKind::Cx => {
                if index == 0 {
                    Some(WireBasis::Z) // control
                } else {
                    Some(WireBasis::X) // target
                }
            }
            _ => None,
        }
    }
}

impl Gate {
    /// Whether this gate provably commutes with `other` (conservative:
    /// `false` means "unknown", not "anti-commutes"). Gates with no shared
    /// qubit always commute; otherwise every shared wire must carry the
    /// same [`WireBasis`] on both gates.
    ///
    /// # Examples
    ///
    /// ```
    /// use olsq2_circuit::{Gate, GateKind};
    /// let a = Gate::two(GateKind::Zz(0.3), 0, 1);
    /// let b = Gate::two(GateKind::Zz(0.3), 1, 2);
    /// assert!(a.commutes_with(&b)); // QAOA phase gates all commute
    /// let cx = Gate::two(GateKind::Cx, 0, 1);
    /// let cx2 = Gate::two(GateKind::Cx, 1, 2);
    /// assert!(!cx.commutes_with(&cx2)); // target of one is control of other
    /// ```
    pub fn commutes_with(&self, other: &Gate) -> bool {
        let mine: Vec<u16> = self.operands.qubits().collect();
        let theirs: Vec<u16> = other.operands.qubits().collect();
        for (i, &q) in mine.iter().enumerate() {
            if let Some(j) = theirs.iter().position(|&p| p == q) {
                match (self.kind.wire_basis(i), other.kind.wire_basis(j)) {
                    (Some(a), Some(b)) if a == b => {}
                    _ => return false,
                }
            }
        }
        true
    }
}

/// Operands of a gate: quantum processors execute one- or two-qubit gates
/// only (§II-A), so the IR enforces that arity statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operands {
    /// A single-qubit gate on `q`.
    One(u16),
    /// A two-qubit gate on `(q, q')`.
    Two(u16, u16),
}

impl Operands {
    /// The operand qubits as a slice-like iterator.
    pub fn qubits(self) -> impl Iterator<Item = u16> {
        match self {
            Operands::One(a) => vec![a].into_iter(),
            Operands::Two(a, b) => vec![a, b].into_iter(),
        }
    }

    /// Whether the gate touches `q`.
    pub fn contains(self, q: u16) -> bool {
        match self {
            Operands::One(a) => a == q,
            Operands::Two(a, b) => a == q || b == q,
        }
    }

    /// Number of operands (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            Operands::One(_) => 1,
            Operands::Two(..) => 2,
        }
    }
}

/// A gate instance: a kind applied to operands.
///
/// # Examples
///
/// ```
/// use olsq2_circuit::{Gate, GateKind, Operands};
/// let g = Gate::new(GateKind::Cx, Operands::Two(0, 1));
/// assert!(g.is_two_qubit());
/// assert!(g.operands.contains(1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// What the gate does.
    pub kind: GateKind,
    /// Which qubits it acts on.
    pub operands: Operands,
}

impl Gate {
    /// Creates a gate.
    ///
    /// # Panics
    ///
    /// Panics if a two-qubit gate names the same qubit twice.
    pub fn new(kind: GateKind, operands: Operands) -> Gate {
        if let Operands::Two(a, b) = operands {
            assert_ne!(a, b, "two-qubit gate with identical operands");
        }
        Gate { kind, operands }
    }

    /// Convenience constructor for a single-qubit gate.
    pub fn one(kind: GateKind, q: u16) -> Gate {
        Gate::new(kind, Operands::One(q))
    }

    /// Convenience constructor for a two-qubit gate.
    pub fn two(kind: GateKind, a: u16, b: u16) -> Gate {
        Gate::new(kind, Operands::Two(a, b))
    }

    /// Whether this is a two-qubit gate (`g ∈ G₂`).
    pub fn is_two_qubit(&self) -> bool {
        matches!(self.operands, Operands::Two(..))
    }

    /// Whether this is a single-qubit gate (`g ∈ G₁`).
    pub fn is_single_qubit(&self) -> bool {
        matches!(self.operands, Operands::One(_))
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.operands {
            Operands::One(q) => write!(f, "{} q[{q}]", self.kind),
            Operands::Two(a, b) => write!(f, "{} q[{a}],q[{b}]", self.kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operands_queries() {
        let one = Operands::One(3);
        assert!(one.contains(3));
        assert!(!one.contains(4));
        assert_eq!(one.arity(), 1);
        let two = Operands::Two(1, 2);
        assert!(two.contains(1) && two.contains(2));
        assert_eq!(two.arity(), 2);
        assert_eq!(two.qubits().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "identical operands")]
    fn rejects_degenerate_two_qubit_gate() {
        let _ = Gate::two(GateKind::Cx, 5, 5);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gate::one(GateKind::H, 0).to_string(), "h q[0]");
        assert_eq!(Gate::two(GateKind::Cx, 0, 1).to_string(), "cx q[0],q[1]");
        assert_eq!(Gate::one(GateKind::Rz(0.5), 2).to_string(), "rz(0.5) q[2]");
    }

    #[test]
    fn kind_params() {
        assert_eq!(GateKind::U(1.0, 2.0, 3.0).params(), vec![1.0, 2.0, 3.0]);
        assert!(GateKind::H.params().is_empty());
        assert_eq!(GateKind::Zz(0.25).params(), vec![0.25]);
    }
}
