//! # olsq2-circuit
//!
//! Quantum circuit intermediate representation for the OLSQ2 reproduction:
//! gates and circuits ([`Gate`], [`Circuit`]), dependency analysis
//! ([`DependencyGraph`], the paper's dependency list `D` and longest chain
//! `T_LB`), OpenQASM 2.0 subset I/O ([`parse_qasm`], [`write_qasm`]), and
//! seeded [`generators`] for every benchmark family in the paper's
//! evaluation (QAOA, QUEKO, QFT, Toffoli ladders, Ising).
//!
//! ## Example
//!
//! ```
//! use olsq2_circuit::{generators::qaoa_circuit, DependencyGraph};
//! let circuit = qaoa_circuit(16, 42);
//! let dag = DependencyGraph::new(&circuit);
//! assert!(dag.longest_chain() <= circuit.num_gates());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod circuit;
mod dag;
mod gate;
pub mod generators;
mod qasm;

pub use circuit::Circuit;
pub use dag::DependencyGraph;
pub use gate::{Gate, GateKind, Operands, WireBasis};
pub use qasm::{parse_qasm, write_qasm, ParseQasmError};
