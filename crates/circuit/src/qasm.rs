//! OpenQASM 2.0 subset reader/writer.
//!
//! Supports the fragment the paper's benchmark files use: a single `qreg`,
//! optional `creg`, the `qelib1` one- and two-qubit gates, `ccx` (expanded
//! to the 15-gate Toffoli decomposition so the circuit stays in the 1/2-
//! qubit IR), and `barrier`/`measure` (ignored for layout synthesis).
//! Angle expressions understand `pi`, rationals, and products
//! (e.g. `-3*pi/8`, `pi/2`, `0.25`).

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind, Operands};
use crate::generators::push_toffoli;
use std::f64::consts::PI;
use std::fmt::Write as _;

/// Errors from [`parse_qasm`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseQasmError {
    /// Statement is not in the supported subset.
    Unsupported {
        /// Line number (1-based).
        line: usize,
        /// The statement text.
        statement: String,
    },
    /// A qubit reference is malformed or out of range.
    BadQubit {
        /// Line number (1-based).
        line: usize,
        /// The operand text.
        operand: String,
    },
    /// An angle expression could not be evaluated.
    BadAngle {
        /// Line number (1-based).
        line: usize,
        /// The expression text.
        expr: String,
    },
    /// No `qreg` declaration was found before gates.
    MissingQreg,
    /// A gate names the same qubit twice.
    DuplicateOperand {
        /// Line number (1-based).
        line: usize,
    },
}

impl std::fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseQasmError::Unsupported { line, statement } => {
                write!(f, "line {line}: unsupported statement {statement:?}")
            }
            ParseQasmError::BadQubit { line, operand } => {
                write!(f, "line {line}: bad qubit operand {operand:?}")
            }
            ParseQasmError::BadAngle { line, expr } => {
                write!(f, "line {line}: cannot evaluate angle {expr:?}")
            }
            ParseQasmError::MissingQreg => write!(f, "no qreg declaration found"),
            ParseQasmError::DuplicateOperand { line } => {
                write!(f, "line {line}: gate repeats an operand qubit")
            }
        }
    }
}

impl std::error::Error for ParseQasmError {}

/// Evaluates a QASM angle expression: numbers, `pi`, unary minus, `*`, `/`.
fn eval_angle(expr: &str) -> Option<f64> {
    // Grammar: term (('*'|'/') term)*, term = ['-'] (number | 'pi')
    let expr = expr.trim();
    let mut value = 1.0f64;
    let mut negate = false;
    let mut op = '*';
    let mut token = String::new();
    let apply = |value: &mut f64, token: &str, op: char, negate: bool| -> Option<()> {
        let t = token.trim();
        if t.is_empty() {
            return None;
        }
        let mut v = if t == "pi" {
            PI
        } else {
            t.parse::<f64>().ok()?
        };
        if negate {
            v = -v;
        }
        match op {
            '*' => *value *= v,
            '/' => {
                if v == 0.0 {
                    return None;
                }
                *value /= v;
            }
            _ => return None,
        }
        Some(())
    };
    for ch in expr.chars() {
        match ch {
            '*' | '/' => {
                apply(&mut value, &token, op, negate)?;
                token.clear();
                negate = false;
                op = ch;
            }
            '-' if token.trim().is_empty() => negate = !negate,
            '+' if token.trim().is_empty() => {}
            _ => token.push(ch),
        }
    }
    apply(&mut value, &token, op, negate)?;
    Some(value)
}

fn parse_qubit(operand: &str, num_qubits: usize) -> Option<u16> {
    let operand = operand.trim();
    let open = operand.find('[')?;
    let close = operand.find(']')?;
    let idx: usize = operand[open + 1..close].trim().parse().ok()?;
    (idx < num_qubits).then_some(idx as u16)
}

/// Parses an OpenQASM 2.0 program into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] for statements outside the supported subset,
/// malformed operands, or missing `qreg`.
///
/// # Examples
///
/// ```
/// use olsq2_circuit::parse_qasm;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
/// let circuit = parse_qasm(src)?;
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.num_gates(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_qasm(source: &str) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    for (lineno, raw_line) in source.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let text = raw_line.split("//").next().unwrap_or("");
        for statement in text.split(';') {
            let stmt = statement.trim();
            if stmt.is_empty() {
                continue;
            }
            let lower = stmt.to_ascii_lowercase();
            if lower.starts_with("openqasm") || lower.starts_with("include") {
                continue;
            }
            if let Some(rest) = lower.strip_prefix("qreg") {
                let n = rest
                    .trim()
                    .split('[')
                    .nth(1)
                    .and_then(|s| s.split(']').next())
                    .and_then(|s| s.trim().parse::<usize>().ok())
                    .ok_or_else(|| ParseQasmError::Unsupported {
                        line,
                        statement: stmt.to_string(),
                    })?;
                match &mut circuit {
                    None => circuit = Some(Circuit::new(n)),
                    Some(c) => {
                        // Multiple qregs: widen (rare; treated as one register).
                        let mut widened = Circuit::new(c.num_qubits() + n);
                        widened.extend_from(c);
                        *c = widened;
                    }
                }
                continue;
            }
            if lower.starts_with("creg")
                || lower.starts_with("barrier")
                || lower.starts_with("measure")
            {
                continue;
            }
            // Gate application: name[(params)] operand(,operand)*
            let c = circuit.as_mut().ok_or(ParseQasmError::MissingQreg)?;
            let (head, operands_text) = match stmt.find(|ch: char| ch.is_whitespace()) {
                Some(pos) if !stmt[..pos].contains('(') || stmt[..pos].contains(')') => {
                    stmt.split_at(pos)
                }
                _ => {
                    // Parameterized gates may contain spaces inside (...):
                    // split after the closing paren.
                    match stmt.find(')') {
                        Some(p) => stmt.split_at(p + 1),
                        None => {
                            return Err(ParseQasmError::Unsupported {
                                line,
                                statement: stmt.to_string(),
                            })
                        }
                    }
                }
            };
            let head = head.trim();
            let (name, params) = match head.find('(') {
                Some(p) => {
                    let name = head[..p].trim();
                    let inner = head[p + 1..head.rfind(')').unwrap_or(head.len())].trim();
                    let mut params = Vec::new();
                    for expr in inner.split(',') {
                        params.push(eval_angle(expr).ok_or_else(|| ParseQasmError::BadAngle {
                            line,
                            expr: expr.to_string(),
                        })?);
                    }
                    (name, params)
                }
                None => (head, Vec::new()),
            };
            let qubits: Result<Vec<u16>, _> = operands_text
                .split(',')
                .map(|op| {
                    parse_qubit(op, c.num_qubits()).ok_or_else(|| ParseQasmError::BadQubit {
                        line,
                        operand: op.to_string(),
                    })
                })
                .collect();
            let qubits = qubits?;
            let kind = match (name, params.as_slice()) {
                ("id", _) => GateKind::Id,
                ("h", _) => GateKind::H,
                ("x", _) => GateKind::X,
                ("y", _) => GateKind::Y,
                ("z", _) => GateKind::Z,
                ("s", _) => GateKind::S,
                ("sdg", _) => GateKind::Sdg,
                ("t", _) => GateKind::T,
                ("tdg", _) => GateKind::Tdg,
                ("rx", [a]) => GateKind::Rx(*a),
                ("ry", [a]) => GateKind::Ry(*a),
                ("rz", [a]) | ("u1", [a]) | ("p", [a]) => GateKind::Rz(*a),
                ("u2", [a, b]) => GateKind::U(PI / 2.0, *a, *b),
                ("u3", [a, b, cc]) | ("u", [a, b, cc]) => GateKind::U(*a, *b, *cc),
                ("cx", _) | ("CX", _) => GateKind::Cx,
                ("cz", _) => GateKind::Cz,
                ("cp", [a]) | ("cu1", [a]) => GateKind::Cp(*a),
                ("rzz", [a]) => GateKind::Zz(*a),
                ("swap", _) => GateKind::Swap,
                ("ccx", _) => {
                    // Expand Toffoli into the 15-gate decomposition.
                    if qubits.len() != 3 {
                        return Err(ParseQasmError::Unsupported {
                            line,
                            statement: stmt.to_string(),
                        });
                    }
                    push_toffoli(c, qubits[0], qubits[1], qubits[2]);
                    continue;
                }
                (other, _) if qubits.len() <= 2 && !other.is_empty() => GateKind::Other {
                    name: other.into(),
                    params: params.clone(),
                },
                _ => {
                    return Err(ParseQasmError::Unsupported {
                        line,
                        statement: stmt.to_string(),
                    })
                }
            };
            let operands = match qubits.as_slice() {
                [q] => Operands::One(*q),
                [a, b] if a != b => Operands::Two(*a, *b),
                [_, _] => return Err(ParseQasmError::DuplicateOperand { line }),
                _ => {
                    return Err(ParseQasmError::Unsupported {
                        line,
                        statement: stmt.to_string(),
                    })
                }
            };
            c.push(Gate::new(kind, operands));
        }
    }
    circuit.ok_or(ParseQasmError::MissingQreg)
}

/// Serializes a circuit as OpenQASM 2.0.
///
/// # Examples
///
/// ```
/// use olsq2_circuit::{write_qasm, Circuit, Gate, GateKind};
/// let mut c = Circuit::new(2);
/// c.push(Gate::two(GateKind::Cx, 0, 1));
/// let qasm = write_qasm(&c);
/// assert!(qasm.contains("qreg q[2];"));
/// assert!(qasm.contains("cx q[0],q[1];"));
/// ```
pub fn write_qasm(circuit: &Circuit) -> String {
    let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for gate in circuit.gates() {
        let params = gate.kind.params();
        let head = if params.is_empty() {
            gate.kind.name().to_string()
        } else {
            let joined: Vec<String> = params.iter().map(|p| format!("{p:.12}")).collect();
            format!("{}({})", gate.kind.name(), joined.join(","))
        };
        match gate.operands {
            Operands::One(q) => {
                let _ = writeln!(out, "{head} q[{q}];");
            }
            Operands::Two(a, b) => {
                let _ = writeln!(out, "{head} q[{a}],q[{b}];");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_program() {
        let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
rz(-3*pi/8) q[1];
measure q[0] -> c[0];
barrier q[0],q[1];
"#;
        let c = parse_qasm(src).expect("parses");
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.num_gates(), 4);
        match &c.gate(2).kind {
            GateKind::Rz(a) => assert!((a - PI / 4.0).abs() < 1e-12),
            other => panic!("expected rz, got {other:?}"),
        }
        match &c.gate(3).kind {
            GateKind::Rz(a) => assert!((a + 3.0 * PI / 8.0).abs() < 1e-12),
            other => panic!("expected rz, got {other:?}"),
        }
    }

    #[test]
    fn ccx_expands_to_toffoli() {
        let src = "qreg q[3];\nccx q[0],q[1],q[2];\n";
        let c = parse_qasm(src).expect("parses");
        assert_eq!(c.num_gates(), 15);
    }

    #[test]
    fn roundtrip() {
        let src = "qreg q[4];\nh q[0];\ncx q[0],q[1];\nswap q[2],q[3];\nrz(0.5) q[2];\n";
        let c = parse_qasm(src).expect("parses");
        let text = write_qasm(&c);
        let c2 = parse_qasm(&text).expect("reparses");
        assert_eq!(c.num_gates(), c2.num_gates());
        assert_eq!(c.num_qubits(), c2.num_qubits());
        for (a, b) in c.gates().iter().zip(c2.gates()) {
            assert_eq!(a.operands, b.operands);
            assert_eq!(a.kind.name(), b.kind.name());
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            parse_qasm("h q[0];"),
            Err(ParseQasmError::MissingQreg)
        ));
        assert!(matches!(
            parse_qasm("qreg q[2];\nh q[5];"),
            Err(ParseQasmError::BadQubit { line: 2, .. })
        ));
        assert!(matches!(
            parse_qasm("qreg q[2];\ncx q[0],q[0];"),
            Err(ParseQasmError::DuplicateOperand { line: 2 })
        ));
        assert!(matches!(
            parse_qasm("qreg q[2];\nrz(frog) q[0];"),
            Err(ParseQasmError::BadAngle { .. })
        ));
    }

    #[test]
    fn angle_expressions() {
        assert!((eval_angle("pi").unwrap() - PI).abs() < 1e-12);
        assert!((eval_angle("pi/2").unwrap() - PI / 2.0).abs() < 1e-12);
        assert!((eval_angle("-pi/4").unwrap() + PI / 4.0).abs() < 1e-12);
        assert!((eval_angle("3*pi/2").unwrap() - 3.0 * PI / 2.0).abs() < 1e-12);
        assert!((eval_angle("0.125").unwrap() - 0.125).abs() < 1e-12);
        assert!((eval_angle(" - 2 * pi ").unwrap() + 2.0 * PI).abs() < 1e-12);
        assert!(eval_angle("").is_none());
        assert!(eval_angle("pi/0").is_none());
    }

    #[test]
    fn unknown_gates_become_other() {
        let src = "qreg q[2];\nfoo q[0];\nbar(1.5) q[0],q[1];\n";
        let c = parse_qasm(src).expect("parses");
        assert_eq!(c.num_gates(), 2);
        assert!(matches!(&c.gate(0).kind, GateKind::Other { .. }));
    }

    #[test]
    fn statements_share_lines() {
        let src = "qreg q[2]; h q[0]; cx q[0],q[1];";
        let c = parse_qasm(src).expect("parses");
        assert_eq!(c.num_gates(), 2);
    }
}
