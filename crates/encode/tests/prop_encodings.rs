//! Randomized tests for the encoding layer: random values/bounds against
//! the semantics the encodings promise, driven by a seeded in-repo PRNG
//! (deterministic across runs and machines).

use olsq2_encode::{at_most_one, width_for, AmoEncoding, BitVec, CardEncoding, CardinalityNetwork};
use olsq2_prng::Rng;
use olsq2_sat::{Lit, SolveResult, Solver};

#[test]
fn bitvec_le_ge_agree_with_integers() {
    let mut rng = Rng::seed_from_u64(0xB17_0001);
    for _ in 0..150 {
        let val = rng.gen_range(0u64..64);
        let bound = rng.gen_range(0u64..64);
        let mut s = Solver::new();
        let bv = BitVec::new(&mut s, width_for(63));
        bv.assert_eq_const(&mut s, val);
        let g_le = Lit::positive(s.new_var());
        let g_ge = Lit::positive(s.new_var());
        bv.assert_le_const_if(&mut s, bound, Some(g_le));
        bv.assert_ge_const_if(&mut s, bound, Some(g_ge));
        assert_eq!(s.solve(&[g_le]) == SolveResult::Sat, val <= bound);
        assert_eq!(s.solve(&[g_ge]) == SolveResult::Sat, val >= bound);
        assert_eq!(s.solve(&[g_le, g_ge]) == SolveResult::Sat, val == bound);
    }
}

#[test]
fn cardinality_counts_popcount() {
    let mut rng = Rng::seed_from_u64(0xCA4D_0002);
    for _ in 0..150 {
        let pattern = rng.gen_range(0u32..(1 << 10));
        let k = rng.gen_range(0usize..=10);
        let enc = *rng
            .choose(&[
                CardEncoding::SequentialCounter,
                CardEncoding::Totalizer,
                CardEncoding::AdderNetwork,
            ])
            .expect("nonempty");
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..10).map(|_| Lit::positive(s.new_var())).collect();
        let mut card = CardinalityNetwork::new(&mut s, &xs, 10, enc);
        for (i, &x) in xs.iter().enumerate() {
            s.add_clause([if pattern >> i & 1 == 1 { x } else { !x }]);
        }
        let b = card.at_most(&mut s, k);
        let expected = (pattern.count_ones() as usize) <= k;
        assert_eq!(s.solve(&[b]) == SolveResult::Sat, expected);
    }
}

#[test]
fn amo_free_variables_get_valid_models() {
    // Small enough to enumerate exhaustively instead of sampling.
    for n in 2usize..9 {
        for enc in [
            AmoEncoding::Pairwise,
            AmoEncoding::Sequential,
            AmoEncoding::Commander,
        ] {
            let mut s = Solver::new();
            let lits: Vec<Lit> = (0..n).map(|_| Lit::positive(s.new_var())).collect();
            at_most_one(&mut s, &lits, enc);
            assert_eq!(s.solve(&[]), SolveResult::Sat);
            let true_count = lits
                .iter()
                .filter(|&&l| s.model_value(l) == Some(true))
                .count();
            assert!(true_count <= 1);
        }
    }
}

#[test]
fn sorted_network_descent_matches_popcount() {
    // Iterative descent (the paper's swap-count loop) must converge to
    // the exact popcount for both sorted encodings.
    let mut rng = Rng::seed_from_u64(0x50D_0003);
    for _ in 0..60 {
        let pattern = rng.gen_range(0u32..(1 << 8));
        for enc in [CardEncoding::SequentialCounter, CardEncoding::Totalizer] {
            let mut s = Solver::new();
            let xs: Vec<Lit> = (0..8).map(|_| Lit::positive(s.new_var())).collect();
            let mut card = CardinalityNetwork::new(&mut s, &xs, 8, enc);
            for (i, &x) in xs.iter().enumerate() {
                s.add_clause([if pattern >> i & 1 == 1 { x } else { !x }]);
            }
            let mut k = 8usize;
            let optimum = loop {
                let b = card.at_most(&mut s, k);
                match s.solve(&[b]) {
                    SolveResult::Sat => {
                        if k == 0 {
                            break 0;
                        }
                        k -= 1;
                    }
                    SolveResult::Unsat => break k + 1,
                    SolveResult::Unknown => unreachable!("no budget configured"),
                }
            };
            assert_eq!(optimum, pattern.count_ones() as usize);
        }
    }
}
