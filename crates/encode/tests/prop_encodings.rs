//! Property tests for the encoding layer: random values/bounds against the
//! semantics the encodings promise.

use olsq2_encode::{
    at_most_one, width_for, AmoEncoding, BitVec, CardEncoding, CardinalityNetwork, CnfSink,
};
use olsq2_sat::{Lit, SolveResult, Solver};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn bitvec_le_ge_agree_with_integers(val in 0u64..64, bound in 0u64..64) {
        let mut s = Solver::new();
        let bv = BitVec::new(&mut s, width_for(63));
        bv.assert_eq_const(&mut s, val);
        let g_le = Lit::positive(s.new_var());
        let g_ge = Lit::positive(s.new_var());
        bv.assert_le_const_if(&mut s, bound, Some(g_le));
        bv.assert_ge_const_if(&mut s, bound, Some(g_ge));
        prop_assert_eq!(s.solve(&[g_le]) == SolveResult::Sat, val <= bound);
        prop_assert_eq!(s.solve(&[g_ge]) == SolveResult::Sat, val >= bound);
        prop_assert_eq!(s.solve(&[g_le, g_ge]) == SolveResult::Sat, val == bound);
    }

    #[test]
    fn cardinality_counts_popcount(
        pattern in 0u32..(1 << 10),
        k in 0usize..=10,
        enc_idx in 0usize..3,
    ) {
        let enc = [
            CardEncoding::SequentialCounter,
            CardEncoding::Totalizer,
            CardEncoding::AdderNetwork,
        ][enc_idx];
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..10).map(|_| Lit::positive(s.new_var())).collect();
        let mut card = CardinalityNetwork::new(&mut s, &xs, 10, enc);
        for (i, &x) in xs.iter().enumerate() {
            s.add_clause([if pattern >> i & 1 == 1 { x } else { !x }]);
        }
        let b = card.at_most(&mut s, k);
        let expected = (pattern.count_ones() as usize) <= k;
        prop_assert_eq!(s.solve(&[b]) == SolveResult::Sat, expected);
    }

    #[test]
    fn amo_free_variables_get_valid_models(n in 2usize..9, enc_idx in 0usize..3) {
        let enc = [AmoEncoding::Pairwise, AmoEncoding::Sequential, AmoEncoding::Commander][enc_idx];
        let mut s = Solver::new();
        let lits: Vec<Lit> = (0..n).map(|_| Lit::positive(s.new_var())).collect();
        at_most_one(&mut s, &lits, enc);
        prop_assert_eq!(s.solve(&[]), SolveResult::Sat);
        let true_count = lits
            .iter()
            .filter(|&&l| s.model_value(l) == Some(true))
            .count();
        prop_assert!(true_count <= 1);
    }

    #[test]
    fn sorted_network_descent_matches_popcount(pattern in 0u32..(1 << 8)) {
        // Iterative descent (the paper's swap-count loop) must converge to
        // the exact popcount for both sorted encodings.
        for enc in [CardEncoding::SequentialCounter, CardEncoding::Totalizer] {
            let mut s = Solver::new();
            let xs: Vec<Lit> = (0..8).map(|_| Lit::positive(s.new_var())).collect();
            let mut card = CardinalityNetwork::new(&mut s, &xs, 8, enc);
            for (i, &x) in xs.iter().enumerate() {
                s.add_clause([if pattern >> i & 1 == 1 { x } else { !x }]);
            }
            let mut k = 8usize;
            let optimum = loop {
                let b = card.at_most(&mut s, k);
                match s.solve(&[b]) {
                    SolveResult::Sat => {
                        if k == 0 {
                            break 0;
                        }
                        k -= 1;
                    }
                    SolveResult::Unsat => break k + 1,
                    SolveResult::Unknown => unreachable!("no budget configured"),
                }
            };
            prop_assert_eq!(optimum, pattern.count_ones() as usize);
        }
    }
}
