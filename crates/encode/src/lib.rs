//! # olsq2-encode
//!
//! CNF encoding layer for the OLSQ2 reproduction — the stand-in for Z3's
//! bit-blasting pipeline. The paper's best-performing configuration encodes
//! mapping/time variables as bit-vectors lowered to SAT and its cardinality
//! bound as a CNF sequential counter; this crate provides those building
//! blocks (plus the slower alternatives the paper measures against):
//!
//! * [`CnfSink`] — clause consumer abstraction ([`olsq2_sat::Solver`],
//!   [`Cnf`] collector, [`CountingSink`] statistics wrapper,
//!   [`BatchSink`] bulk staging into the solver)
//! * [`gates`] — Tseitin gate definitions
//! * [`BitVec`] — unsigned bit-vectors with comparator clauses
//! * [`OneHot`] — direct encodings with pairwise / sequential / commander
//!   at-most-one
//! * [`CardinalityNetwork`] — sequential counter, totalizer, and adder
//!   network cardinality with assumption-based bounding
//! * [`FamilyTally`] — per-constraint-family formula-size accounting for
//!   the paper's encoding-size tables
//! * [`to_dimacs`] / [`from_dimacs`] — instance export/import
//!
//! ## Example
//!
//! ```
//! use olsq2_encode::{BitVec, CnfSink};
//! use olsq2_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let x = BitVec::new(&mut solver, 4);
//! x.assert_le_const_if(&mut solver, 9, None);
//! x.assert_ge_const_if(&mut solver, 9, None);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert_eq!(x.value_in(&solver), Some(9));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitvec;
mod cardinality;
mod dimacs;
mod families;
pub mod gates;
mod onehot;
mod sink;

pub use bitvec::{width_for, BitVec};
pub use cardinality::{CardEncoding, CardinalityNetwork};
pub use dimacs::{from_dimacs, to_dimacs, ParseDimacsError};
pub use families::{ConstraintFamily, FamilyCount, FamilyTally, FormulaSize, SplitGroup};
pub use onehot::{at_most_one, exactly_one, AmoEncoding, OneHot};
pub use sink::{BatchSink, Cnf, CnfSink, CountingSink};
