//! Tseitin encodings of Boolean gates.
//!
//! Each function introduces a fresh definition variable and the clauses
//! tying it to its inputs, returning the defining literal. All definitions
//! are full (both directions) so the returned literal can be used in any
//! polarity.

use crate::sink::CnfSink;
use olsq2_sat::Lit;

/// `y ↔ a ∧ b`.
pub fn and_lit<S: CnfSink>(sink: &mut S, a: Lit, b: Lit) -> Lit {
    let y = Lit::positive(sink.new_var());
    sink.add_clause(&[!y, a]);
    sink.add_clause(&[!y, b]);
    sink.add_clause(&[y, !a, !b]);
    y
}

/// `y ↔ ⋀ lits` (empty conjunction is true).
pub fn and_all<S: CnfSink>(sink: &mut S, lits: &[Lit]) -> Lit {
    match lits {
        [] => sink.true_lit(),
        [l] => *l,
        _ => {
            let y = Lit::positive(sink.new_var());
            let mut long = Vec::with_capacity(lits.len() + 1);
            long.push(y);
            for &l in lits {
                sink.add_clause(&[!y, l]);
                long.push(!l);
            }
            sink.add_clause(&long);
            y
        }
    }
}

/// `y ↔ a ∨ b`.
pub fn or_lit<S: CnfSink>(sink: &mut S, a: Lit, b: Lit) -> Lit {
    !and_lit(sink, !a, !b)
}

/// `y ↔ ⋁ lits` (empty disjunction is false).
pub fn or_all<S: CnfSink>(sink: &mut S, lits: &[Lit]) -> Lit {
    let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
    !and_all(sink, &negated)
}

/// `y ↔ (a ↔ b)` (XNOR).
pub fn iff_lit<S: CnfSink>(sink: &mut S, a: Lit, b: Lit) -> Lit {
    let y = Lit::positive(sink.new_var());
    sink.add_clause(&[!y, !a, b]);
    sink.add_clause(&[!y, a, !b]);
    sink.add_clause(&[y, a, b]);
    sink.add_clause(&[y, !a, !b]);
    y
}

/// `y ↔ a ⊕ b`.
pub fn xor_lit<S: CnfSink>(sink: &mut S, a: Lit, b: Lit) -> Lit {
    !iff_lit(sink, a, b)
}

/// Asserts `a → b`.
pub fn imply<S: CnfSink>(sink: &mut S, a: Lit, b: Lit) {
    sink.add_clause(&[!a, b]);
}

/// Asserts `⋀ antecedents → ⋁ consequents` as a single clause.
pub fn imply_clause<S: CnfSink>(sink: &mut S, antecedents: &[Lit], consequents: &[Lit]) {
    let mut clause = Vec::with_capacity(antecedents.len() + consequents.len());
    clause.extend(antecedents.iter().map(|&l| !l));
    clause.extend_from_slice(consequents);
    sink.add_clause(&clause);
}

/// A single-output full adder: returns `(sum, carry)` for `a + b + c`.
pub fn full_adder<S: CnfSink>(sink: &mut S, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
    let sum = Lit::positive(sink.new_var());
    let carry = Lit::positive(sink.new_var());
    // sum ↔ a ⊕ b ⊕ c
    sink.add_clause(&[!a, !b, !c, sum]);
    sink.add_clause(&[!a, b, c, sum]);
    sink.add_clause(&[a, !b, c, sum]);
    sink.add_clause(&[a, b, !c, sum]);
    sink.add_clause(&[a, b, c, !sum]);
    sink.add_clause(&[a, !b, !c, !sum]);
    sink.add_clause(&[!a, b, !c, !sum]);
    sink.add_clause(&[!a, !b, c, !sum]);
    // carry ↔ at least two of {a,b,c}
    sink.add_clause(&[!a, !b, carry]);
    sink.add_clause(&[!a, !c, carry]);
    sink.add_clause(&[!b, !c, carry]);
    sink.add_clause(&[a, b, !carry]);
    sink.add_clause(&[a, c, !carry]);
    sink.add_clause(&[b, c, !carry]);
    (sum, carry)
}

/// A half adder: returns `(sum, carry)` for `a + b`.
pub fn half_adder<S: CnfSink>(sink: &mut S, a: Lit, b: Lit) -> (Lit, Lit) {
    let sum = xor_lit(sink, a, b);
    let carry = and_lit(sink, a, b);
    (sum, carry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::{SolveResult, Solver};

    fn check_all(
        n: usize,
        build: impl Fn(&mut Solver, &[Lit]) -> Lit,
        expect: impl Fn(&[bool]) -> bool,
    ) {
        for bits in 0..(1u32 << n) {
            let mut s = Solver::new();
            let ins: Vec<Lit> = (0..n).map(|_| Lit::positive(s.new_var())).collect();
            let out = build(&mut s, &ins);
            let vals: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            for (l, &v) in ins.iter().zip(&vals) {
                s.add_clause([if v { *l } else { !*l }]);
            }
            assert_eq!(s.solve(&[]), SolveResult::Sat);
            assert_eq!(s.model_value(out), Some(expect(&vals)), "inputs {vals:?}");
        }
    }

    #[test]
    fn and_gate_truth_table() {
        check_all(2, |s, i| and_lit(s, i[0], i[1]), |v| v[0] && v[1]);
    }

    #[test]
    fn or_gate_truth_table() {
        check_all(2, |s, i| or_lit(s, i[0], i[1]), |v| v[0] || v[1]);
    }

    #[test]
    fn xor_iff_truth_tables() {
        check_all(2, |s, i| xor_lit(s, i[0], i[1]), |v| v[0] ^ v[1]);
        check_all(2, |s, i| iff_lit(s, i[0], i[1]), |v| v[0] == v[1]);
    }

    #[test]
    fn wide_and_or() {
        check_all(4, and_all, |v| v.iter().all(|&b| b));
        check_all(4, or_all, |v| v.iter().any(|&b| b));
    }

    #[test]
    fn empty_and_or() {
        let mut s = Solver::new();
        let t = and_all(&mut s, &[]);
        let f = or_all(&mut s, &[]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(t), Some(true));
        assert_eq!(s.model_value(f), Some(false));
    }

    #[test]
    fn adder_truth_tables() {
        for bits in 0..8u32 {
            let mut s = Solver::new();
            let a = Lit::positive(s.new_var());
            let b = Lit::positive(s.new_var());
            let c = Lit::positive(s.new_var());
            let (sum, carry) = full_adder(&mut s, a, b, c);
            let vals = [bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1];
            for (l, v) in [a, b, c].iter().zip(vals) {
                s.add_clause([if v { *l } else { !*l }]);
            }
            assert_eq!(s.solve(&[]), SolveResult::Sat);
            let total = vals.iter().filter(|&&x| x).count();
            assert_eq!(s.model_value(sum), Some(total % 2 == 1));
            assert_eq!(s.model_value(carry), Some(total >= 2));
        }
    }

    #[test]
    fn half_adder_truth_table() {
        for bits in 0..4u32 {
            let mut s = Solver::new();
            let a = Lit::positive(s.new_var());
            let b = Lit::positive(s.new_var());
            let (sum, carry) = half_adder(&mut s, a, b);
            let va = bits & 1 == 1;
            let vb = bits >> 1 & 1 == 1;
            s.add_clause([if va { a } else { !a }]);
            s.add_clause([if vb { b } else { !b }]);
            assert_eq!(s.solve(&[]), SolveResult::Sat);
            assert_eq!(s.model_value(sum), Some(va ^ vb));
            assert_eq!(s.model_value(carry), Some(va && vb));
        }
    }

    #[test]
    fn imply_clause_shapes() {
        let mut s = Solver::new();
        let a = Lit::positive(s.new_var());
        let b = Lit::positive(s.new_var());
        let c = Lit::positive(s.new_var());
        imply_clause(&mut s, &[a, b], &[c]);
        s.add_clause([a]);
        s.add_clause([b]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(c), Some(true));
    }
}
