//! DIMACS CNF import/export for [`Cnf`] formulas.
//!
//! Mirrors the paper's workflow of dumping solver instances
//! (`Solver.sexpr()` in the original tooling) so individual SMT/SAT
//! instances can be measured in isolation.

use crate::sink::{Cnf, CnfSink};
use olsq2_sat::{Lit, Var};
use std::fmt::Write as _;
use std::str::FromStr;

/// Serializes a formula in DIMACS CNF format.
///
/// # Examples
///
/// ```
/// use olsq2_encode::{Cnf, CnfSink, to_dimacs};
/// use olsq2_sat::Lit;
/// let mut cnf = Cnf::new();
/// let a = Lit::positive(cnf.new_var());
/// let b = Lit::positive(cnf.new_var());
/// cnf.add_clause(&[a, !b]);
/// let text = to_dimacs(&cnf);
/// assert!(text.starts_with("p cnf 2 1"));
/// assert!(text.contains("1 -2 0"));
/// ```
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for &lit in clause {
            let v = lit.var().index() as i64 + 1;
            let _ = write!(out, "{} ", if lit.is_negative() { -v } else { v });
        }
        out.push_str("0\n");
    }
    out
}

/// Errors from [`from_dimacs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDimacsError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader(String),
    /// A token could not be parsed as a literal.
    BadLiteral(String),
    /// A literal references a variable beyond the header's count.
    VarOutOfRange(i64),
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseDimacsError::BadHeader(l) => write!(f, "malformed DIMACS header: {l:?}"),
            ParseDimacsError::BadLiteral(t) => write!(f, "malformed literal token: {t:?}"),
            ParseDimacsError::VarOutOfRange(v) => {
                write!(f, "literal {v} exceeds declared variable count")
            }
        }
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text into a [`Cnf`].
///
/// Comment lines (`c …`) are skipped; clauses may span lines. The declared
/// clause count is not enforced (many generators emit approximations), but
/// variable indices are validated against the header.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on a missing/malformed header, unparsable
/// literal, or out-of-range variable.
pub fn from_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut lines = text.lines().filter(|l| !l.trim_start().starts_with('c'));
    let header = lines
        .by_ref()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| ParseDimacsError::BadHeader(String::new()))?;
    let mut parts = header.split_whitespace();
    let (p, cnf_kw) = (parts.next(), parts.next());
    if p != Some("p") || cnf_kw != Some("cnf") {
        return Err(ParseDimacsError::BadHeader(header.to_string()));
    }
    let num_vars: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseDimacsError::BadHeader(header.to_string()))?;

    let mut cnf = Cnf::new();
    for _ in 0..num_vars {
        cnf.new_var();
    }
    let mut clause: Vec<Lit> = Vec::new();
    for line in lines {
        for token in line.split_whitespace() {
            let v = i64::from_str(token)
                .map_err(|_| ParseDimacsError::BadLiteral(token.to_string()))?;
            if v == 0 {
                cnf.add_clause(&clause);
                clause.clear();
            } else {
                let idx = v.unsigned_abs() as usize;
                if idx > num_vars {
                    return Err(ParseDimacsError::VarOutOfRange(v));
                }
                clause.push(Lit::new(Var::from_index(idx - 1), v < 0));
            }
        }
    }
    if !clause.is_empty() {
        cnf.add_clause(&clause);
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::{SolveResult, Solver};

    #[test]
    fn roundtrip() {
        let mut cnf = Cnf::new();
        let a = Lit::positive(cnf.new_var());
        let b = Lit::positive(cnf.new_var());
        let c = Lit::positive(cnf.new_var());
        cnf.add_clause(&[a, !b]);
        cnf.add_clause(&[b, c]);
        cnf.add_clause(&[!a, !c]);
        let text = to_dimacs(&cnf);
        let parsed = from_dimacs(&text).expect("roundtrip parses");
        assert_eq!(parsed.num_vars(), 3);
        assert_eq!(parsed.num_clauses(), 3);
        assert_eq!(parsed.clauses(), cnf.clauses());
    }

    #[test]
    fn parses_comments_and_multiline_clauses() {
        let text = "c a comment\nc another\np cnf 3 2\n1 -2\n0\n2 3 0\n";
        let cnf = from_dimacs(text).expect("parses");
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[0].len(), 2);
        let mut s = Solver::new();
        cnf.load_into(&mut s);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            from_dimacs("p sat 3 2\n1 0\n"),
            Err(ParseDimacsError::BadHeader(_))
        ));
        assert!(matches!(
            from_dimacs(""),
            Err(ParseDimacsError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            from_dimacs("p cnf 2 1\n3 0\n"),
            Err(ParseDimacsError::VarOutOfRange(3))
        ));
    }

    #[test]
    fn rejects_bad_literal() {
        assert!(matches!(
            from_dimacs("p cnf 2 1\nxyz 0\n"),
            Err(ParseDimacsError::BadLiteral(_))
        ));
    }
}
