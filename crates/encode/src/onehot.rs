//! One-hot (direct) encodings of finite-domain variables.
//!
//! A value in `0..n` is one selector literal per candidate plus an
//! exactly-one constraint. This is the reproduction's stand-in for Z3's
//! *integer* encoding of OLSQ variables: wide, with explicit
//! mutual-exclusion constraints — the formulation the paper shows losing to
//! bit-vectors. Several at-most-one encodings are provided so their impact
//! can be measured.

use crate::sink::CnfSink;
use olsq2_sat::{Lit, Solver};

/// Choice of at-most-one encoding for [`OneHot`] groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AmoEncoding {
    /// Pairwise: `O(n²)` binary clauses, no auxiliary variables.
    #[default]
    Pairwise,
    /// Sequential (ladder): `O(n)` clauses and auxiliaries.
    Sequential,
    /// Commander: groups of 3 with recursive commanders.
    Commander,
}

/// A finite-domain variable with one selector literal per value.
///
/// # Examples
///
/// ```
/// use olsq2_encode::{OneHot, AmoEncoding, CnfSink};
/// use olsq2_sat::{Solver, SolveResult};
/// let mut s = Solver::new();
/// let x = OneHot::new(&mut s, 5, AmoEncoding::Pairwise);
/// s.add_clause([x.selector(3)]);
/// assert_eq!(s.solve(&[]), SolveResult::Sat);
/// assert_eq!(x.value_in(&s), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OneHot {
    selectors: Vec<Lit>,
}

impl OneHot {
    /// Allocates `domain` selectors with an exactly-one constraint.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is zero.
    pub fn new<S: CnfSink>(sink: &mut S, domain: usize, enc: AmoEncoding) -> OneHot {
        assert!(domain > 0, "domain must be nonempty");
        let selectors: Vec<Lit> = (0..domain).map(|_| Lit::positive(sink.new_var())).collect();
        sink.add_clause(&selectors); // at least one
        at_most_one(sink, &selectors, enc);
        OneHot { selectors }
    }

    /// Wraps existing selectors without adding constraints.
    pub fn from_selectors(selectors: Vec<Lit>) -> OneHot {
        assert!(!selectors.is_empty());
        OneHot { selectors }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.selectors.len()
    }

    /// The selector literal for value `v` (true iff the variable equals `v`).
    pub fn selector(&self, v: usize) -> Lit {
        self.selectors[v]
    }

    /// All selectors, in value order.
    pub fn selectors(&self) -> &[Lit] {
        &self.selectors
    }

    /// Decodes the value from the solver's model (the lowest true selector).
    pub fn value_in(&self, solver: &Solver) -> Option<usize> {
        self.selectors
            .iter()
            .position(|&l| solver.model_value(l) == Some(true))
    }
}

/// Adds an at-most-one constraint over `lits` using the chosen encoding.
pub fn at_most_one<S: CnfSink>(sink: &mut S, lits: &[Lit], enc: AmoEncoding) {
    match enc {
        AmoEncoding::Pairwise => pairwise_amo(sink, lits),
        AmoEncoding::Sequential => sequential_amo(sink, lits),
        AmoEncoding::Commander => commander_amo(sink, lits),
    }
}

/// Adds an exactly-one constraint over `lits`.
pub fn exactly_one<S: CnfSink>(sink: &mut S, lits: &[Lit], enc: AmoEncoding) {
    assert!(!lits.is_empty());
    sink.add_clause(lits);
    at_most_one(sink, lits, enc);
}

fn pairwise_amo<S: CnfSink>(sink: &mut S, lits: &[Lit]) {
    for i in 0..lits.len() {
        for j in (i + 1)..lits.len() {
            sink.add_clause(&[!lits[i], !lits[j]]);
        }
    }
}

/// Sinz-style ladder: `s_i` means "some literal among the first i+1 is true".
fn sequential_amo<S: CnfSink>(sink: &mut S, lits: &[Lit]) {
    if lits.len() <= 3 {
        return pairwise_amo(sink, lits);
    }
    let n = lits.len();
    let s: Vec<Lit> = (0..n - 1).map(|_| Lit::positive(sink.new_var())).collect();
    sink.add_clause(&[!lits[0], s[0]]);
    for i in 1..n - 1 {
        sink.add_clause(&[!lits[i], s[i]]);
        sink.add_clause(&[!s[i - 1], s[i]]);
        sink.add_clause(&[!lits[i], !s[i - 1]]);
    }
    sink.add_clause(&[!lits[n - 1], !s[n - 2]]);
}

/// Commander encoding with groups of 3.
fn commander_amo<S: CnfSink>(sink: &mut S, lits: &[Lit]) {
    if lits.len() <= 3 {
        return pairwise_amo(sink, lits);
    }
    let mut commanders = Vec::with_capacity(lits.len().div_ceil(3));
    for chunk in lits.chunks(3) {
        let c = Lit::positive(sink.new_var());
        // At most one inside the group.
        pairwise_amo(sink, chunk);
        // c is true iff some group literal is true (only → needed for AMO,
        // but both directions keep the commander faithful).
        for &l in chunk {
            sink.add_clause(&[!l, c]);
        }
        let mut clause: Vec<Lit> = chunk.to_vec();
        clause.push(!c);
        sink.add_clause(&clause);
        commanders.push(c);
    }
    commander_amo(sink, &commanders);
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::SolveResult;

    const ENCODINGS: [AmoEncoding; 3] = [
        AmoEncoding::Pairwise,
        AmoEncoding::Sequential,
        AmoEncoding::Commander,
    ];

    /// Exhaustively checks that AMO admits exactly the assignments with ≤ 1
    /// true literal.
    fn check_amo(n: usize, enc: AmoEncoding) {
        for bits in 0..(1u32 << n) {
            let mut s = Solver::new();
            let lits: Vec<Lit> = (0..n).map(|_| Lit::positive(s.new_var())).collect();
            at_most_one(&mut s, &lits, enc);
            for (i, &l) in lits.iter().enumerate() {
                s.add_clause([if bits >> i & 1 == 1 { l } else { !l }]);
            }
            let expected = bits.count_ones() <= 1;
            assert_eq!(
                s.solve(&[]) == SolveResult::Sat,
                expected,
                "n={n} bits={bits:b} enc={enc:?}"
            );
        }
    }

    #[test]
    fn amo_exhaustive_all_encodings() {
        for enc in ENCODINGS {
            for n in 1..=7 {
                check_amo(n, enc);
            }
        }
    }

    #[test]
    fn exactly_one_rejects_zero_and_two() {
        for enc in ENCODINGS {
            let mut s = Solver::new();
            let lits: Vec<Lit> = (0..5).map(|_| Lit::positive(s.new_var())).collect();
            exactly_one(&mut s, &lits, enc);
            // zero true:
            let all_false: Vec<Lit> = lits.iter().map(|&l| !l).collect();
            assert_eq!(s.solve(&all_false), SolveResult::Unsat);
            // two true:
            assert_eq!(s.solve(&[lits[1], lits[3]]), SolveResult::Unsat);
            // one true:
            assert_eq!(s.solve(&[lits[2]]), SolveResult::Sat);
        }
    }

    #[test]
    fn onehot_decodes_model() {
        for enc in ENCODINGS {
            let mut s = Solver::new();
            let x = OneHot::new(&mut s, 9, enc);
            s.add_clause([x.selector(7)]);
            assert_eq!(s.solve(&[]), SolveResult::Sat);
            assert_eq!(x.value_in(&s), Some(7));
        }
    }

    #[test]
    fn onehot_domain_one() {
        let mut s = Solver::new();
        let x = OneHot::new(&mut s, 1, AmoEncoding::Pairwise);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(x.value_in(&s), Some(0));
    }
}
