//! Unsigned bit-vector variables.
//!
//! This is the reproduction's stand-in for Z3's bit-vector theory: a value
//! in `0..2^w` represented by `w` fresh Boolean variables (LSB first),
//! manipulated purely through CNF. The OLSQ2 "bv" encoding stores each
//! mapping variable π and time variable t as one of these.

use crate::gates::{and_all, iff_lit};
use crate::sink::CnfSink;
use olsq2_sat::{Lit, Solver};

/// An unsigned bit-vector of fresh Boolean variables, LSB first.
///
/// # Examples
///
/// ```
/// use olsq2_encode::{BitVec, CnfSink};
/// use olsq2_sat::{Solver, SolveResult};
/// let mut s = Solver::new();
/// let bv = BitVec::new(&mut s, 4);
/// bv.assert_eq_const(&mut s, 11);
/// assert_eq!(s.solve(&[]), SolveResult::Sat);
/// assert_eq!(bv.value_in(&s), Some(11));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    bits: Vec<Lit>,
}

/// Minimal width able to represent values `0..=max` (at least 1).
pub fn width_for(max: u64) -> usize {
    (64 - max.leading_zeros() as usize).max(1)
}

impl BitVec {
    /// Allocates a bit-vector of `width` fresh variables.
    pub fn new<S: CnfSink>(sink: &mut S, width: usize) -> BitVec {
        assert!(width > 0 && width <= 63, "width must be in 1..=63");
        BitVec {
            bits: (0..width).map(|_| Lit::positive(sink.new_var())).collect(),
        }
    }

    /// Wraps existing literals as a bit-vector (LSB first).
    pub fn from_bits(bits: Vec<Lit>) -> BitVec {
        assert!(!bits.is_empty());
        BitVec { bits }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The literals, LSB first.
    pub fn bits(&self) -> &[Lit] {
        &self.bits
    }

    /// The literal of bit `i` adjusted to be true iff that bit of the value
    /// equals the corresponding bit of `val`.
    #[inline]
    fn bit_eq(&self, i: usize, val: u64) -> Lit {
        if val >> i & 1 == 1 {
            self.bits[i]
        } else {
            !self.bits[i]
        }
    }

    /// Literals that are all true iff the vector equals `val`
    /// (a conjunction usable as an implication antecedent).
    pub fn eq_const_conj(&self, val: u64) -> Vec<Lit> {
        (0..self.width()).map(|i| self.bit_eq(i, val)).collect()
    }

    /// A clause prefix asserting "≠ val": literals of which at least one is
    /// true iff the vector differs from `val`. Push payload literals after
    /// these to encode `(self == val) → payload`.
    pub fn neq_const_clause(&self, val: u64) -> Vec<Lit> {
        (0..self.width()).map(|i| !self.bit_eq(i, val)).collect()
    }

    /// Reified equality with a constant: a literal `y ↔ (self == val)`.
    pub fn eq_const_lit<S: CnfSink>(&self, sink: &mut S, val: u64) -> Lit {
        let conj = self.eq_const_conj(val);
        and_all(sink, &conj)
    }

    /// Asserts `self == val` with unit clauses.
    ///
    /// # Panics
    ///
    /// Panics if `val` does not fit in the width.
    pub fn assert_eq_const<S: CnfSink>(&self, sink: &mut S, val: u64) {
        assert!(val >> self.width() == 0, "constant wider than bit-vector");
        for i in 0..self.width() {
            sink.add_clause(&[self.bit_eq(i, val)]);
        }
    }

    /// Asserts `guard → (self ≤ val)` using the lexicographic encoding
    /// (one clause per zero bit of `val`). Pass `None` for an
    /// unconditional constraint.
    pub fn assert_le_const_if<S: CnfSink>(&self, sink: &mut S, val: u64, guard: Option<Lit>) {
        let w = self.width();
        if val >> w != 0 || val + 1 == 1 << w {
            return; // trivially satisfied within the width
        }
        for i in 0..w {
            if val >> i & 1 == 0 {
                let mut clause = Vec::with_capacity(w + 1);
                if let Some(g) = guard {
                    clause.push(!g);
                }
                clause.push(!self.bits[i]);
                for j in (i + 1)..w {
                    if val >> j & 1 == 1 {
                        clause.push(!self.bits[j]);
                    }
                }
                sink.add_clause(&clause);
            }
        }
    }

    /// Asserts `guard → (self < val)`; `val == 0` forces the guard false.
    pub fn assert_lt_const_if<S: CnfSink>(&self, sink: &mut S, val: u64, guard: Option<Lit>) {
        if val == 0 {
            match guard {
                Some(g) => sink.add_clause(&[!g]),
                None => {
                    let f = sink.false_lit();
                    sink.add_clause(&[f]);
                }
            }
        } else {
            self.assert_le_const_if(sink, val - 1, guard);
        }
    }

    /// Asserts `guard → (self ≥ val)`: at least one bit at or above each
    /// pattern position. Encoded by the dual lexicographic scheme.
    pub fn assert_ge_const_if<S: CnfSink>(&self, sink: &mut S, val: u64, guard: Option<Lit>) {
        let w = self.width();
        assert!(val >> w == 0, "constant wider than bit-vector");
        if val == 0 {
            return;
        }
        // self ≥ val  ⇔  ¬(self ≤ val-1): for each set bit i of val, if all
        // higher bits where val has 1 are matched, bit_i must hold unless a
        // higher zero-position bit of val is set in self.
        for i in 0..w {
            if val >> i & 1 == 1 {
                let mut clause = Vec::with_capacity(w + 1);
                if let Some(g) = guard {
                    clause.push(!g);
                }
                clause.push(self.bits[i]);
                for j in (i + 1)..w {
                    if val >> j & 1 == 0 {
                        clause.push(self.bits[j]);
                    }
                }
                sink.add_clause(&clause);
            }
        }
    }

    /// Reified equality between two equal-width vectors.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn eq_lit<S: CnfSink>(&self, sink: &mut S, other: &BitVec) -> Lit {
        assert_eq!(self.width(), other.width());
        let per_bit: Vec<Lit> = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(&a, &b)| iff_lit(sink, a, b))
            .collect();
        and_all(sink, &per_bit)
    }

    /// Reified strict comparison: a literal `y ↔ (self < other)`.
    ///
    /// Built MSB-down: `lt_i = (¬a_i ∧ b_i) ∨ ((a_i ↔ b_i) ∧ lt_{i+1})`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn lt_lit<S: CnfSink>(&self, sink: &mut S, other: &BitVec) -> Lit {
        assert_eq!(self.width(), other.width());
        let mut lt = sink.false_lit();
        for (&a, &b) in self.bits.iter().zip(&other.bits) {
            // Iterating LSB→MSB and folding keeps the MSB outermost.
            let strictly = crate::gates::and_lit(sink, !a, b);
            let equal = iff_lit(sink, a, b);
            let carry = crate::gates::and_lit(sink, equal, lt);
            lt = crate::gates::or_lit(sink, strictly, carry);
        }
        lt
    }

    /// Asserts `self < other`.
    pub fn assert_lt<S: CnfSink>(&self, sink: &mut S, other: &BitVec) {
        let lt = self.lt_lit(sink, other);
        sink.add_clause(&[lt]);
    }

    /// Asserts `self ≤ other`.
    pub fn assert_le<S: CnfSink>(&self, sink: &mut S, other: &BitVec) {
        let gt = other.lt_lit(sink, self);
        sink.add_clause(&[!gt]);
    }

    /// Decodes the value from the solver's last model.
    pub fn value_in(&self, solver: &Solver) -> Option<u64> {
        let mut v = 0u64;
        for (i, &b) in self.bits.iter().enumerate() {
            if solver.model_value(b)? {
                v |= 1 << i;
            }
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::SolveResult;

    #[test]
    fn width_for_ranges() {
        assert_eq!(width_for(0), 1);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 2);
        assert_eq!(width_for(3), 2);
        assert_eq!(width_for(4), 3);
        assert_eq!(width_for(127), 7);
        assert_eq!(width_for(128), 8);
    }

    #[test]
    fn const_roundtrip() {
        for val in 0..16u64 {
            let mut s = Solver::new();
            let bv = BitVec::new(&mut s, 4);
            bv.assert_eq_const(&mut s, val);
            assert_eq!(s.solve(&[]), SolveResult::Sat);
            assert_eq!(bv.value_in(&s), Some(val));
        }
    }

    #[test]
    fn le_const_exhaustive() {
        for bound in 0..8u64 {
            for val in 0..8u64 {
                let mut s = Solver::new();
                let bv = BitVec::new(&mut s, 3);
                bv.assert_le_const_if(&mut s, bound, None);
                bv.assert_eq_const(&mut s, val);
                let expected = val <= bound;
                assert_eq!(
                    s.solve(&[]) == SolveResult::Sat,
                    expected,
                    "val={val} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn ge_const_exhaustive() {
        for bound in 0..8u64 {
            for val in 0..8u64 {
                let mut s = Solver::new();
                let bv = BitVec::new(&mut s, 3);
                bv.assert_ge_const_if(&mut s, bound, None);
                bv.assert_eq_const(&mut s, val);
                let expected = val >= bound;
                assert_eq!(
                    s.solve(&[]) == SolveResult::Sat,
                    expected,
                    "val={val} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn guarded_le_with_assumptions() {
        let mut s = Solver::new();
        let bv = BitVec::new(&mut s, 4);
        let g = Lit::positive(s.new_var());
        bv.assert_le_const_if(&mut s, 5, Some(g));
        bv.assert_eq_const(&mut s, 9);
        assert_eq!(s.solve(&[g]), SolveResult::Unsat);
        assert_eq!(s.solve(&[!g]), SolveResult::Sat);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn lt_zero_forces_guard_false() {
        let mut s = Solver::new();
        let bv = BitVec::new(&mut s, 3);
        let g = Lit::positive(s.new_var());
        bv.assert_lt_const_if(&mut s, 0, Some(g));
        assert_eq!(s.solve(&[g]), SolveResult::Unsat);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn eq_const_lit_reification() {
        for val in 0..8u64 {
            for target in 0..8u64 {
                let mut s = Solver::new();
                let bv = BitVec::new(&mut s, 3);
                let y = bv.eq_const_lit(&mut s, target);
                bv.assert_eq_const(&mut s, val);
                assert_eq!(s.solve(&[]), SolveResult::Sat);
                assert_eq!(s.model_value(y), Some(val == target));
            }
        }
    }

    #[test]
    fn neq_clause_blocks_single_value() {
        let mut s = Solver::new();
        let bv = BitVec::new(&mut s, 3);
        let clause = bv.neq_const_clause(5);
        s.add_clause(clause);
        bv.assert_eq_const(&mut s, 5);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn eq_lit_between_vectors() {
        let mut s = Solver::new();
        let a = BitVec::new(&mut s, 3);
        let b = BitVec::new(&mut s, 3);
        let y = a.eq_lit(&mut s, &b);
        a.assert_eq_const(&mut s, 6);
        b.assert_eq_const(&mut s, 6);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(y), Some(true));

        let mut s2 = Solver::new();
        let a = BitVec::new(&mut s2, 3);
        let b = BitVec::new(&mut s2, 3);
        let y = a.eq_lit(&mut s2, &b);
        a.assert_eq_const(&mut s2, 6);
        b.assert_eq_const(&mut s2, 2);
        assert_eq!(s2.solve(&[]), SolveResult::Sat);
        assert_eq!(s2.model_value(y), Some(false));
    }

    #[test]
    fn lt_between_vectors_exhaustive() {
        for a in 0..8u64 {
            for b in 0..8u64 {
                let mut s = Solver::new();
                let x = BitVec::new(&mut s, 3);
                let y = BitVec::new(&mut s, 3);
                let lt = x.lt_lit(&mut s, &y);
                x.assert_eq_const(&mut s, a);
                y.assert_eq_const(&mut s, b);
                assert_eq!(s.solve(&[]), SolveResult::Sat);
                assert_eq!(s.model_value(lt), Some(a < b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn assert_lt_le_prune_models() {
        let mut s = Solver::new();
        let x = BitVec::new(&mut s, 3);
        let y = BitVec::new(&mut s, 3);
        x.assert_lt(&mut s, &y);
        y.assert_le(&mut s, &x);
        assert_eq!(s.solve(&[]), SolveResult::Unsat); // x < y ≤ x impossible
    }

    #[test]
    fn le_const_trivial_bounds_add_nothing() {
        let mut cnf = crate::Cnf::new();
        let bv = BitVec::new(&mut cnf, 3);
        bv.assert_le_const_if(&mut cnf, 7, None); // max value: trivial
        assert_eq!(cnf.num_clauses(), 0);
    }
}
