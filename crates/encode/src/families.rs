//! Per-constraint-family formula accounting.
//!
//! The paper's encoding-size tables break the formula down by constraint
//! family (mapping/injectivity, dependencies, SWAP choice, gate scheduling,
//! mapping transition, cardinality). Rather than threading a counting sink
//! through every encoder, the model builders snapshot `(vars, clauses)`
//! before and after each section and credit the delta to a family via
//! [`FamilyTally::credit_since`]. Auxiliary (Tseitin) variables allocated
//! inside a section are therefore attributed to the family that needed
//! them.

use crate::sink::Cnf;
use olsq2_sat::{Lit, Solver};

/// The constraint families the OLSQ2 models are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintFamily {
    /// Mapping variables `π_q^t` plus injectivity constraints.
    Mapping,
    /// Time variables `t_g` plus dependency / exclusivity constraints.
    Dependency,
    /// SWAP choice variables `σ_e^t` plus SWAP/SWAP exclusion.
    Swap,
    /// Gate scheduling validity: two-qubit adjacency (Eq. 1) and SWAP
    /// overlap (Eq. 2–3), or the baseline's space-variable consistency.
    Scheduling,
    /// Mapping transformation across time steps (stay/move clauses).
    Transition,
    /// Objective machinery: cardinality networks and bound activation
    /// literals (Eq. 4–5).
    Cardinality,
}

impl ConstraintFamily {
    /// Every family, in model-build order.
    pub const ALL: [ConstraintFamily; 6] = [
        ConstraintFamily::Mapping,
        ConstraintFamily::Dependency,
        ConstraintFamily::Swap,
        ConstraintFamily::Scheduling,
        ConstraintFamily::Transition,
        ConstraintFamily::Cardinality,
    ];

    /// Stable snake_case name, used as a trace-field / metric suffix.
    pub fn name(self) -> &'static str {
        match self {
            ConstraintFamily::Mapping => "mapping",
            ConstraintFamily::Dependency => "dependency",
            ConstraintFamily::Swap => "swap",
            ConstraintFamily::Scheduling => "scheduling",
            ConstraintFamily::Transition => "transition",
            ConstraintFamily::Cardinality => "cardinality",
        }
    }

    /// Precomputed `vars.<name>` span-field / metric key, so hot build
    /// paths don't re-allocate format strings per family per build.
    pub fn vars_key(self) -> &'static str {
        match self {
            ConstraintFamily::Mapping => "vars.mapping",
            ConstraintFamily::Dependency => "vars.dependency",
            ConstraintFamily::Swap => "vars.swap",
            ConstraintFamily::Scheduling => "vars.scheduling",
            ConstraintFamily::Transition => "vars.transition",
            ConstraintFamily::Cardinality => "vars.cardinality",
        }
    }

    /// Precomputed `clauses.<name>` span-field / metric key.
    pub fn clauses_key(self) -> &'static str {
        match self {
            ConstraintFamily::Mapping => "clauses.mapping",
            ConstraintFamily::Dependency => "clauses.dependency",
            ConstraintFamily::Swap => "clauses.swap",
            ConstraintFamily::Scheduling => "clauses.scheduling",
            ConstraintFamily::Transition => "clauses.transition",
            ConstraintFamily::Cardinality => "clauses.cardinality",
        }
    }

    fn index(self) -> usize {
        match self {
            ConstraintFamily::Mapping => 0,
            ConstraintFamily::Dependency => 1,
            ConstraintFamily::Swap => 2,
            ConstraintFamily::Scheduling => 3,
            ConstraintFamily::Transition => 4,
            ConstraintFamily::Cardinality => 5,
        }
    }
}

/// A mutually-exclusive, exhaustive selector group a cube-and-conquer
/// splitter may branch on: the formula is known to contain an
/// **unguarded** exactly-one constraint over `lits` (so asserting each
/// selector in turn partitions the search space, and the at-least-one
/// clause certifies exhaustiveness in a stitched proof).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitGroup {
    /// The constraint family the group belongs to (splitters prefer
    /// [`ConstraintFamily::Mapping`] groups — the initial-mapping
    /// selectors partition the instance along its most symmetric axis).
    pub family: ConstraintFamily,
    /// The selector literals; exactly one is true in every model.
    pub lits: Vec<Lit>,
}

/// Variables and clauses credited to one family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FamilyCount {
    /// Variables allocated (including auxiliary/Tseitin variables).
    pub vars: usize,
    /// Clauses emitted.
    pub clauses: usize,
}

/// Anything whose formula size can be snapshotted for delta accounting.
pub trait FormulaSize {
    /// Current `(variables, clauses)` totals.
    fn formula_size(&self) -> (usize, usize);
}

impl FormulaSize for Solver {
    fn formula_size(&self) -> (usize, usize) {
        (self.num_vars(), self.num_clauses())
    }
}

impl FormulaSize for Cnf {
    fn formula_size(&self) -> (usize, usize) {
        (self.num_vars(), self.num_clauses())
    }
}

/// Accumulated per-family formula sizes for one built model.
///
/// # Examples
///
/// ```
/// use olsq2_encode::{Cnf, CnfSink, ConstraintFamily, FamilyTally};
/// use olsq2_sat::Lit;
///
/// let mut cnf = Cnf::new();
/// let mut tally = FamilyTally::new();
/// let mark = tally.mark(&cnf);
/// let a = Lit::positive(cnf.new_var());
/// cnf.add_clause(&[a]);
/// tally.credit_since(ConstraintFamily::Mapping, &cnf, mark);
/// assert_eq!(tally.get(ConstraintFamily::Mapping).vars, 1);
/// assert_eq!(tally.total().clauses, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FamilyTally {
    counts: [FamilyCount; ConstraintFamily::ALL.len()],
    /// One-hot groups registered by the model builders as candidate
    /// cube-split dimensions (see [`SplitGroup`]).
    split_groups: Vec<SplitGroup>,
}

impl FamilyTally {
    /// An all-zero tally.
    pub fn new() -> FamilyTally {
        FamilyTally::default()
    }

    /// Snapshots the current formula size — the starting mark for the next
    /// [`FamilyTally::credit_since`].
    pub fn mark(&self, sized: &impl FormulaSize) -> (usize, usize) {
        sized.formula_size()
    }

    /// Credits everything added since `mark` to `family` and returns a new
    /// mark at the current size.
    pub fn credit_since(
        &mut self,
        family: ConstraintFamily,
        sized: &impl FormulaSize,
        mark: (usize, usize),
    ) -> (usize, usize) {
        let now = sized.formula_size();
        let c = &mut self.counts[family.index()];
        c.vars += now.0.saturating_sub(mark.0);
        c.clauses += now.1.saturating_sub(mark.1);
        now
    }

    /// The counts credited to one family.
    pub fn get(&self, family: ConstraintFamily) -> FamilyCount {
        self.counts[family.index()]
    }

    /// Iterates `(family, counts)` in model-build order.
    pub fn iter(&self) -> impl Iterator<Item = (ConstraintFamily, FamilyCount)> + '_ {
        ConstraintFamily::ALL
            .iter()
            .map(move |&f| (f, self.counts[f.index()]))
    }

    /// Registers a one-hot selector group as a candidate cube-split
    /// dimension. The caller guarantees the formula contains an
    /// **unguarded** exactly-one constraint over `lits`; groups with
    /// fewer than two selectors are ignored (nothing to split).
    pub fn register_split_group(&mut self, family: ConstraintFamily, lits: Vec<Lit>) {
        if lits.len() >= 2 {
            self.split_groups.push(SplitGroup { family, lits });
        }
    }

    /// The registered cube-split groups, in registration order.
    pub fn split_groups(&self) -> &[SplitGroup] {
        &self.split_groups
    }

    /// Sum over all families.
    pub fn total(&self) -> FamilyCount {
        let mut t = FamilyCount::default();
        for c in &self.counts {
            t.vars += c.vars;
            t.clauses += c.clauses;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CnfSink;
    use olsq2_sat::Lit;

    #[test]
    fn deltas_accumulate_per_family() {
        let mut cnf = Cnf::new();
        let mut tally = FamilyTally::new();
        let mut mark = tally.mark(&cnf);
        let a = Lit::positive(cnf.new_var());
        let b = Lit::positive(cnf.new_var());
        cnf.add_clause(&[a, b]);
        mark = tally.credit_since(ConstraintFamily::Mapping, &cnf, mark);
        cnf.add_clause(&[!a]);
        cnf.add_clause(&[!b]);
        mark = tally.credit_since(ConstraintFamily::Dependency, &cnf, mark);
        // A second credit to an already-used family accumulates.
        cnf.add_clause(&[a]);
        tally.credit_since(ConstraintFamily::Mapping, &cnf, mark);

        assert_eq!(
            tally.get(ConstraintFamily::Mapping),
            FamilyCount {
                vars: 2,
                clauses: 2
            }
        );
        assert_eq!(
            tally.get(ConstraintFamily::Dependency),
            FamilyCount {
                vars: 0,
                clauses: 2
            }
        );
        assert_eq!(
            tally.get(ConstraintFamily::Cardinality),
            FamilyCount::default()
        );
        assert_eq!(
            tally.total(),
            FamilyCount {
                vars: 2,
                clauses: 4
            }
        );
    }

    #[test]
    fn family_names_are_unique() {
        let names: std::collections::HashSet<&str> =
            ConstraintFamily::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), ConstraintFamily::ALL.len());
    }

    #[test]
    fn metric_keys_match_name_convention() {
        for f in ConstraintFamily::ALL {
            assert_eq!(f.vars_key(), format!("vars.{}", f.name()));
            assert_eq!(f.clauses_key(), format!("clauses.{}", f.name()));
        }
    }

    #[test]
    fn split_groups_register_in_order_and_skip_degenerate() {
        let mut cnf = Cnf::new();
        let mut tally = FamilyTally::new();
        let a = Lit::positive(cnf.new_var());
        let b = Lit::positive(cnf.new_var());
        tally.register_split_group(ConstraintFamily::Mapping, vec![a, b]);
        tally.register_split_group(ConstraintFamily::Mapping, vec![a]); // ignored
        tally.register_split_group(ConstraintFamily::Dependency, vec![b, a]);
        assert_eq!(tally.split_groups().len(), 2);
        assert_eq!(tally.split_groups()[0].family, ConstraintFamily::Mapping);
        assert_eq!(tally.split_groups()[0].lits, vec![a, b]);
        assert_eq!(tally.split_groups()[1].family, ConstraintFamily::Dependency);
    }

    #[test]
    fn solver_implements_formula_size() {
        let mut s = Solver::new();
        let mut tally = FamilyTally::new();
        let mark = tally.mark(&s);
        let a = Lit::positive(CnfSink::new_var(&mut s));
        let b = Lit::positive(CnfSink::new_var(&mut s));
        // A binary clause: the solver stores unit clauses on the trail, so
        // they would not show up in `num_clauses`.
        CnfSink::add_clause(&mut s, &[a, b]);
        tally.credit_since(ConstraintFamily::Swap, &s, mark);
        assert_eq!(
            tally.get(ConstraintFamily::Swap),
            FamilyCount {
                vars: 2,
                clauses: 1
            }
        );
    }
}
