//! Cardinality constraints (`Σ xᵢ ≤ k`) with swappable encodings.
//!
//! The OLSQ2 swap-count bound (Eq. 5 of the paper) is a Boolean cardinality
//! constraint. The paper compares Z3's `AtMost` (pseudo-Boolean theory
//! solver) against a CNF sequential-counter circuit and finds CNF much
//! faster. Here the contenders are:
//!
//! * [`CardEncoding::SequentialCounter`] — Sinz's counter in CNF with
//!   *sorted, monotone outputs*: bounding to `k` is the single assumption
//!   `¬out[k]`, which is what makes the paper's iterative-descent swap
//!   optimization incremental.
//! * [`CardEncoding::Totalizer`] — Bailleux–Boutonnet unary totalizer,
//!   also with sorted outputs.
//! * [`CardEncoding::AdderNetwork`] — binary adder tree plus a guarded
//!   comparator per bound; propagates poorly, playing the role of the
//!   pseudo-Boolean `AtMost` path in Table II.

// Indexed `for` loops are deliberate here: counter ladders index adjacent bounds.
#![allow(clippy::needless_range_loop)]
use crate::bitvec::BitVec;
use crate::gates::full_adder;
use crate::sink::CnfSink;
use olsq2_sat::Lit;
use std::collections::HashMap;

/// Encoding choice for cardinality networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CardEncoding {
    /// Sinz sequential counter in CNF (the paper's winning choice).
    #[default]
    SequentialCounter,
    /// Unary totalizer tree.
    Totalizer,
    /// Binary adder network + comparator (`AtMost`/pseudo-Boolean stand-in).
    AdderNetwork,
}

#[derive(Debug, Clone)]
enum Outputs {
    /// `sorted[j]` is true if at least `j+1` inputs are true
    /// (input → output direction only).
    Sorted(Vec<Lit>),
    /// Binary count of true inputs.
    Binary(BitVec),
}

/// A cardinality network over a fixed input set, supporting repeated
/// bounding via assumptions (for the iterative-descent loop of §III-B-2).
///
/// # Examples
///
/// ```
/// use olsq2_encode::{CardEncoding, CardinalityNetwork, CnfSink};
/// use olsq2_sat::{Lit, Solver, SolveResult};
/// let mut s = Solver::new();
/// let xs: Vec<Lit> = (0..6).map(|_| Lit::positive(s.new_var())).collect();
/// let mut card = CardinalityNetwork::new(&mut s, &xs, 6, CardEncoding::SequentialCounter);
/// // Force four inputs true, then ask for ≤ 3: UNSAT under the assumption.
/// for &x in &xs[..4] { s.add_clause([x]); }
/// let bound = card.at_most(&mut s, 3);
/// assert_eq!(s.solve(&[bound]), SolveResult::Unsat);
/// let relaxed = card.at_most(&mut s, 4);
/// assert_eq!(s.solve(&[relaxed]), SolveResult::Sat);
/// ```
#[derive(Debug, Clone)]
pub struct CardinalityNetwork {
    n_inputs: usize,
    capacity: usize,
    enc: CardEncoding,
    max_bound: usize,
    /// The input literals (kept so [`CardinalityNetwork::extend`] can
    /// rebuild the adder network; the sorted encodings extend in place).
    inputs: Vec<Lit>,
    outputs: Outputs,
    /// Cached activation literals per bound (adder encoding only).
    bound_cache: HashMap<usize, Lit>,
}

impl CardinalityNetwork {
    /// Builds a network over `inputs` able to express bounds `0..=max_bound`.
    ///
    /// For the sorted encodings, auxiliary size is `O(n · min(n, max_bound+1))`;
    /// bounds above `max_bound` are reported as trivially true.
    pub fn new<S: CnfSink>(
        sink: &mut S,
        inputs: &[Lit],
        max_bound: usize,
        enc: CardEncoding,
    ) -> CardinalityNetwork {
        let n = inputs.len();
        let capacity = n.min(max_bound.saturating_add(1));
        let outputs = match enc {
            CardEncoding::SequentialCounter => {
                Outputs::Sorted(sequential_counter(sink, inputs, capacity))
            }
            CardEncoding::Totalizer => Outputs::Sorted(totalizer(sink, inputs, capacity)),
            CardEncoding::AdderNetwork => Outputs::Binary(adder_network(sink, inputs)),
        };
        CardinalityNetwork {
            n_inputs: n,
            capacity,
            enc,
            max_bound,
            inputs: inputs.to_vec(),
            outputs,
            bound_cache: HashMap::new(),
        }
    }

    /// Appends `new_inputs` to the network in place, reusing the existing
    /// counting circuitry, and returns any activation literals that were
    /// invalidated by the extension (the caller should falsify them at the
    /// root so the solver can discard the superseded comparators).
    ///
    /// * `SequentialCounter` — the sorted output column is exactly the
    ///   fold state of Sinz's counter, so extension *continues the fold*
    ///   over the new inputs; the resulting clauses are identical to a
    ///   fresh build over the concatenated input list.
    /// * `Totalizer` — builds a sub-totalizer over the new inputs and
    ///   merges it with the old root node.
    /// * `AdderNetwork` — re-sums all inputs (the binary adder has no
    ///   extension-friendly structure); previously cached bound literals
    ///   guard comparators over the old, smaller sum and are returned for
    ///   root falsification.
    ///
    /// Bound literals previously returned by [`CardinalityNetwork::at_most`]
    /// for the sorted encodings remain *sound* (they constrain the old
    /// input subset) but no longer cap the full sum; callers must request
    /// fresh bound literals after extension.
    pub fn extend<S: CnfSink>(&mut self, sink: &mut S, new_inputs: &[Lit]) -> Vec<Lit> {
        if new_inputs.is_empty() {
            return Vec::new();
        }
        let old_n = self.n_inputs;
        self.n_inputs += new_inputs.len();
        self.capacity = self.n_inputs.min(self.max_bound.saturating_add(1));
        self.inputs.extend_from_slice(new_inputs);
        let mut invalidated = Vec::new();
        match self.enc {
            CardEncoding::SequentialCounter => {
                let prev = match std::mem::replace(&mut self.outputs, Outputs::Sorted(Vec::new())) {
                    Outputs::Sorted(p) => p,
                    Outputs::Binary(_) => unreachable!("sequential counter has sorted outputs"),
                };
                let outs = sequential_counter_from(sink, prev, new_inputs, old_n, self.capacity);
                self.outputs = Outputs::Sorted(outs);
            }
            CardEncoding::Totalizer => {
                let old = match std::mem::replace(&mut self.outputs, Outputs::Sorted(Vec::new())) {
                    Outputs::Sorted(p) => p,
                    Outputs::Binary(_) => unreachable!("totalizer has sorted outputs"),
                };
                let fresh = totalizer(sink, new_inputs, self.capacity);
                let merged = if old.is_empty() {
                    fresh
                } else {
                    totalizer_merge(sink, &old, &fresh, self.capacity)
                };
                self.outputs = Outputs::Sorted(merged);
            }
            CardEncoding::AdderNetwork => {
                self.outputs = Outputs::Binary(adder_network(sink, &self.inputs));
                invalidated = self.bound_cache.drain().map(|(_, l)| l).collect();
                invalidated.sort_unstable();
            }
        }
        invalidated
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Largest bound the network can constrain (`capacity - 1`); larger
    /// bounds are trivially satisfied.
    pub fn max_expressible_bound(&self) -> usize {
        self.capacity.saturating_sub(1)
    }

    /// Returns an assumption literal that, when assumed, enforces
    /// `Σ inputs ≤ k`. Reusable across `solve` calls; requesting the same
    /// `k` twice returns the same literal.
    ///
    /// # Panics
    ///
    /// For sorted encodings, panics if `k` exceeds `max_bound` given at
    /// construction while still below the input count (the network cannot
    /// express it).
    pub fn at_most<S: CnfSink>(&mut self, sink: &mut S, k: usize) -> Lit {
        if k >= self.n_inputs {
            return sink.true_lit(); // vacuously true
        }
        match &self.outputs {
            Outputs::Sorted(outs) => {
                assert!(
                    k < outs.len(),
                    "bound {k} exceeds network capacity {}",
                    outs.len()
                );
                // outs[k] ↔ "≥ k+1 true" (forward direction); ¬outs[k] caps at k.
                !outs[k]
            }
            Outputs::Binary(_) => {
                if let Some(&l) = self.bound_cache.get(&k) {
                    return l;
                }
                let act = Lit::positive(sink.new_var());
                if let Outputs::Binary(sum) = &self.outputs {
                    sum.assert_le_const_if(sink, k as u64, Some(act));
                }
                self.bound_cache.insert(k, act);
                act
            }
        }
    }
}

/// Sinz sequential counter, one direction, `capacity` columns.
/// Returns `out[j]` = "at least j+1 of the inputs are true".
fn sequential_counter<S: CnfSink>(sink: &mut S, inputs: &[Lit], capacity: usize) -> Vec<Lit> {
    if inputs.is_empty() || capacity == 0 {
        return Vec::new();
    }
    sequential_counter_from(sink, Vec::new(), inputs, 0, capacity)
}

/// Continues the sequential-counter fold: `prev` is the output column
/// after `offset` inputs (empty when starting fresh), and the returned
/// column accounts for `inputs` as inputs `offset..offset+len`. Emits the
/// same clauses a monolithic build over the concatenated inputs would.
fn sequential_counter_from<S: CnfSink>(
    sink: &mut S,
    mut prev: Vec<Lit>,
    inputs: &[Lit],
    offset: usize,
    capacity: usize,
) -> Vec<Lit> {
    if capacity == 0 {
        return prev;
    }
    // s[j] after processing input i: at least j+1 true among inputs[0..=i].
    for (d, &x) in inputs.iter().enumerate() {
        let cols = capacity.min(offset + d + 1);
        let cur: Vec<Lit> = (0..cols).map(|_| Lit::positive(sink.new_var())).collect();
        // x → cur[0]
        sink.add_clause(&[!x, cur[0]]);
        for j in 0..prev.len() {
            // prev[j] → cur[j]
            sink.add_clause(&[!prev[j], cur[j]]);
            // x ∧ prev[j] → cur[j+1]
            if j + 1 < cols {
                sink.add_clause(&[!x, !prev[j], cur[j + 1]]);
            }
        }
        prev = cur;
    }
    prev
}

/// Bailleux–Boutonnet totalizer with outputs capped at `capacity`.
fn totalizer<S: CnfSink>(sink: &mut S, inputs: &[Lit], capacity: usize) -> Vec<Lit> {
    if inputs.is_empty() || capacity == 0 {
        return Vec::new();
    }
    fn build<S: CnfSink>(sink: &mut S, lits: &[Lit], cap: usize) -> Vec<Lit> {
        if lits.len() == 1 {
            return vec![lits[0]];
        }
        let mid = lits.len() / 2;
        let a = build(sink, &lits[..mid], cap);
        let b = build(sink, &lits[mid..], cap);
        totalizer_merge(sink, &a, &b, cap)
    }
    build(sink, inputs, capacity)
}

/// One totalizer merge node: combines two sorted-output children into a
/// sorted parent capped at `cap` columns (input → output direction only).
fn totalizer_merge<S: CnfSink>(sink: &mut S, a: &[Lit], b: &[Lit], cap: usize) -> Vec<Lit> {
    let out_len = (a.len() + b.len()).min(cap);
    if out_len == 0 {
        return Vec::new();
    }
    let r: Vec<Lit> = (0..out_len)
        .map(|_| Lit::positive(sink.new_var()))
        .collect();
    // a_i alone implies r_i (1-indexed semantics, 0-indexed storage).
    for (i, &ai) in a.iter().enumerate() {
        let tgt = i.min(out_len - 1);
        sink.add_clause(&[!ai, r[tgt]]);
    }
    for (j, &bj) in b.iter().enumerate() {
        let tgt = j.min(out_len - 1);
        sink.add_clause(&[!bj, r[tgt]]);
    }
    // a_i ∧ b_j → r_{i+j+1} (counts add).
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let tgt = (i + j + 1).min(out_len - 1);
            sink.add_clause(&[!ai, !bj, r[tgt]]);
        }
    }
    r
}

/// Binary adder network: ripple columns of full adders (a "parallel
/// counter"), returning the binary count of true inputs.
fn adder_network<S: CnfSink>(sink: &mut S, inputs: &[Lit]) -> BitVec {
    if inputs.is_empty() {
        let f = sink.false_lit();
        return BitVec::from_bits(vec![f]);
    }
    let mut columns: Vec<Vec<Lit>> = vec![inputs.to_vec()];
    let mut result: Vec<Lit> = Vec::new();
    let mut col = 0;
    while col < columns.len() {
        let mut bits = std::mem::take(&mut columns[col]);
        // Reduce the column to a single bit, pushing carries upward.
        while bits.len() >= 3 {
            let a = bits.pop().expect("len >= 3");
            let b = bits.pop().expect("len >= 2");
            let c = bits.pop().expect("len >= 1");
            let (sum, carry) = full_adder(sink, a, b, c);
            bits.push(sum);
            if columns.len() <= col + 1 {
                columns.push(Vec::new());
            }
            columns[col + 1].push(carry);
        }
        if bits.len() == 2 {
            let a = bits.pop().expect("len == 2");
            let b = bits.pop().expect("len == 1");
            let (sum, carry) = crate::gates::half_adder(sink, a, b);
            bits.push(sum);
            if columns.len() <= col + 1 {
                columns.push(Vec::new());
            }
            columns[col + 1].push(carry);
        }
        match bits.pop() {
            Some(b) => result.push(b),
            None => {
                let f = sink.false_lit();
                result.push(f);
            }
        }
        col += 1;
    }
    BitVec::from_bits(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::{SolveResult, Solver};

    const ENCODINGS: [CardEncoding; 3] = [
        CardEncoding::SequentialCounter,
        CardEncoding::Totalizer,
        CardEncoding::AdderNetwork,
    ];

    /// For every input pattern and every bound, the network must accept the
    /// pattern iff its popcount is ≤ the bound.
    fn check_exhaustive(n: usize, enc: CardEncoding) {
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..n).map(|_| Lit::positive(s.new_var())).collect();
        let mut card = CardinalityNetwork::new(&mut s, &xs, n, enc);
        let bounds: Vec<Lit> = (0..=n).map(|k| card.at_most(&mut s, k)).collect();
        for pattern in 0..(1u32 << n) {
            for k in 0..=n {
                let mut assumptions = vec![bounds[k]];
                for (i, &x) in xs.iter().enumerate() {
                    assumptions.push(if pattern >> i & 1 == 1 { x } else { !x });
                }
                let expected = pattern.count_ones() as usize <= k;
                let got = s.solve(&assumptions);
                assert_eq!(
                    got == SolveResult::Sat,
                    expected,
                    "enc={enc:?} n={n} pattern={pattern:b} k={k} got={got:?}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_small_all_encodings() {
        for enc in ENCODINGS {
            for n in 1..=5 {
                check_exhaustive(n, enc);
            }
        }
    }

    #[test]
    fn capacity_limits_sorted_networks() {
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..10).map(|_| Lit::positive(s.new_var())).collect();
        let mut card = CardinalityNetwork::new(&mut s, &xs, 3, CardEncoding::SequentialCounter);
        assert_eq!(card.max_expressible_bound(), 3);
        // Bound 2 works:
        let b2 = card.at_most(&mut s, 2);
        for &x in &xs[..3] {
            s.add_clause([x]);
        }
        assert_eq!(s.solve(&[b2]), SolveResult::Unsat);
        let b3 = card.at_most(&mut s, 3);
        assert_eq!(s.solve(&[b3]), SolveResult::Sat);
    }

    #[test]
    fn bound_at_or_above_input_count_is_trivial() {
        for enc in ENCODINGS {
            let mut s = Solver::new();
            let xs: Vec<Lit> = (0..4).map(|_| Lit::positive(s.new_var())).collect();
            let mut card = CardinalityNetwork::new(&mut s, &xs, 4, enc);
            let b = card.at_most(&mut s, 4);
            for &x in &xs {
                s.add_clause([x]);
            }
            assert_eq!(s.solve(&[b]), SolveResult::Sat, "enc={enc:?}");
        }
    }

    #[test]
    fn adder_caches_bound_literals() {
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..5).map(|_| Lit::positive(s.new_var())).collect();
        let mut card = CardinalityNetwork::new(&mut s, &xs, 5, CardEncoding::AdderNetwork);
        let a = card.at_most(&mut s, 2);
        let b = card.at_most(&mut s, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn descent_loop_finds_exact_count() {
        // Mimic the paper's iterative descent: fix 3 of 8 inputs true, then
        // descend the bound until UNSAT; optimum must be 3.
        for enc in ENCODINGS {
            let mut s = Solver::new();
            let xs: Vec<Lit> = (0..8).map(|_| Lit::positive(s.new_var())).collect();
            let mut card = CardinalityNetwork::new(&mut s, &xs, 8, enc);
            for &x in &xs[..3] {
                s.add_clause([x]);
            }
            let mut k = 8usize;
            let optimum = loop {
                let b = card.at_most(&mut s, k);
                match s.solve(&[b]) {
                    SolveResult::Sat => {
                        if k == 0 {
                            break 0;
                        }
                        k -= 1;
                    }
                    SolveResult::Unsat => break k + 1,
                    SolveResult::Unknown => panic!("no budget set"),
                }
            };
            assert_eq!(optimum, 3, "enc={enc:?}");
        }
    }

    /// Build over a prefix, extend with the rest, and require exactly the
    /// popcount semantics of a fresh network over all inputs.
    fn check_extended_exhaustive(n_old: usize, n_new: usize, enc: CardEncoding) {
        let n = n_old + n_new;
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..n).map(|_| Lit::positive(s.new_var())).collect();
        let mut card = CardinalityNetwork::new(&mut s, &xs[..n_old], n, enc);
        let invalidated = card.extend(&mut s, &xs[n_old..]);
        for l in invalidated {
            s.add_clause([!l]);
        }
        assert_eq!(card.num_inputs(), n);
        let bounds: Vec<Lit> = (0..=n).map(|k| card.at_most(&mut s, k)).collect();
        for pattern in 0..(1u32 << n) {
            for k in 0..=n {
                let mut assumptions = vec![bounds[k]];
                for (i, &x) in xs.iter().enumerate() {
                    assumptions.push(if pattern >> i & 1 == 1 { x } else { !x });
                }
                let expected = pattern.count_ones() as usize <= k;
                let got = s.solve(&assumptions);
                assert_eq!(
                    got == SolveResult::Sat,
                    expected,
                    "enc={enc:?} n_old={n_old} n_new={n_new} pattern={pattern:b} k={k} got={got:?}"
                );
            }
        }
    }

    #[test]
    fn extension_matches_fresh_build_all_encodings() {
        for enc in ENCODINGS {
            for (n_old, n_new) in [(0, 3), (1, 3), (2, 2), (3, 1), (3, 3)] {
                check_extended_exhaustive(n_old, n_new, enc);
            }
        }
    }

    #[test]
    fn repeated_extension_grows_capacity_with_inputs() {
        // Capacity limited by input count at build time must grow as
        // inputs arrive, so new bounds become expressible.
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..8).map(|_| Lit::positive(s.new_var())).collect();
        let mut card =
            CardinalityNetwork::new(&mut s, &xs[..2], 7, CardEncoding::SequentialCounter);
        assert_eq!(card.max_expressible_bound(), 1);
        card.extend(&mut s, &xs[2..5]);
        card.extend(&mut s, &xs[5..]);
        assert_eq!(card.max_expressible_bound(), 7);
        for &x in &xs[..5] {
            s.add_clause([x]);
        }
        let b4 = card.at_most(&mut s, 4);
        assert_eq!(s.solve(&[b4]), SolveResult::Unsat);
        let b5 = card.at_most(&mut s, 5);
        assert_eq!(s.solve(&[b5]), SolveResult::Sat);
    }

    #[test]
    fn sequential_extension_emits_identical_clause_count() {
        // The fold continuation must produce exactly the clauses of a
        // monolithic build over the concatenated inputs.
        let mut fresh = crate::Cnf::new();
        let xs: Vec<Lit> = (0..9).map(|_| fresh.new_var()).map(Lit::positive).collect();
        CardinalityNetwork::new(&mut fresh, &xs, 5, CardEncoding::SequentialCounter);

        let mut grown = crate::Cnf::new();
        let ys: Vec<Lit> = (0..9).map(|_| grown.new_var()).map(Lit::positive).collect();
        let mut card =
            CardinalityNetwork::new(&mut grown, &ys[..4], 5, CardEncoding::SequentialCounter);
        card.extend(&mut grown, &ys[4..]);
        assert_eq!(fresh.num_clauses(), grown.num_clauses());
        assert_eq!(fresh.num_vars(), grown.num_vars());
    }

    #[test]
    fn zero_inputs() {
        for enc in ENCODINGS {
            let mut s = Solver::new();
            let mut card = CardinalityNetwork::new(&mut s, &[], 3, enc);
            let b = card.at_most(&mut s, 0);
            assert_eq!(s.solve(&[b]), SolveResult::Sat, "enc={enc:?}");
        }
    }
}
