//! The [`CnfSink`] abstraction: anything clauses can be emitted into.
//!
//! The encoding helpers in this crate are generic over the sink so the same
//! encoder code can stream clauses directly into the [`olsq2_sat::Solver`],
//! collect them into a [`Cnf`] for DIMACS export, or pass through a
//! [`CountingSink`] that records formula-size statistics for the tables in
//! the paper.

use olsq2_sat::{Lit, Solver, Var};

/// A consumer of CNF clauses with its own variable allocator.
pub trait CnfSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Emits one clause.
    fn add_clause(&mut self, lits: &[Lit]);

    /// A literal constrained to be true (allocated lazily, at most once).
    fn true_lit(&mut self) -> Lit;

    /// A literal constrained to be false.
    fn false_lit(&mut self) -> Lit {
        !self.true_lit()
    }
}

impl CnfSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        Solver::add_clause(self, lits.iter().copied());
    }

    fn true_lit(&mut self) -> Lit {
        // The solver has no stored constant; allocate one per call site via
        // ConstPool in higher layers. For direct use, allocate and pin.
        let l = Lit::positive(Solver::new_var(self));
        Solver::add_clause(self, [l]);
        l
    }
}

/// An owned CNF formula, collectible for DIMACS export and inspection.
///
/// # Examples
///
/// ```
/// use olsq2_encode::{Cnf, CnfSink};
/// use olsq2_sat::Lit;
/// let mut cnf = Cnf::new();
/// let a = Lit::positive(cnf.new_var());
/// let b = Lit::positive(cnf.new_var());
/// cnf.add_clause(&[a, b]);
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.num_clauses(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    true_lit: Option<Lit>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of collected clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// The collected clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Loads every clause into a fresh solver (allocating its variables).
    pub fn load_into(&self, solver: &mut Solver) {
        while solver.num_vars() < self.num_vars {
            solver.new_var();
        }
        for c in &self.clauses {
            solver.add_clause(c.iter().copied());
        }
    }
}

impl CnfSink for Cnf {
    fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }

    fn true_lit(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = Lit::positive(self.new_var());
        self.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }
}

/// Wraps a sink, counting variables and clauses that pass through.
///
/// Used by the experiment harness to report formula sizes alongside solve
/// times (the paper's "fewer variables and constraints" claim).
#[derive(Debug)]
pub struct CountingSink<'a, S> {
    inner: &'a mut S,
    vars: usize,
    clauses: usize,
    literals: usize,
}

impl<'a, S: CnfSink> CountingSink<'a, S> {
    /// Wraps `inner`, counting from zero.
    pub fn new(inner: &'a mut S) -> Self {
        CountingSink {
            inner,
            vars: 0,
            clauses: 0,
            literals: 0,
        }
    }

    /// Variables allocated through this wrapper.
    pub fn vars_added(&self) -> usize {
        self.vars
    }

    /// Clauses emitted through this wrapper.
    pub fn clauses_added(&self) -> usize {
        self.clauses
    }

    /// Literal occurrences emitted through this wrapper.
    pub fn literals_added(&self) -> usize {
        self.literals
    }
}

impl<S: CnfSink> CnfSink for CountingSink<'_, S> {
    fn new_var(&mut self) -> Var {
        self.vars += 1;
        self.inner.new_var()
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses += 1;
        self.literals += lits.len();
        self.inner.add_clause(lits);
    }

    fn true_lit(&mut self) -> Lit {
        self.inner.true_lit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::SolveResult;

    #[test]
    fn cnf_collects_and_loads() {
        let mut cnf = Cnf::new();
        let a = Lit::positive(cnf.new_var());
        let b = Lit::positive(cnf.new_var());
        cnf.add_clause(&[a, b]);
        cnf.add_clause(&[!a]);
        let mut s = Solver::new();
        cnf.load_into(&mut s);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(b), Some(true));
    }

    #[test]
    fn cnf_true_lit_is_cached() {
        let mut cnf = Cnf::new();
        let t1 = cnf.true_lit();
        let t2 = cnf.true_lit();
        assert_eq!(t1, t2);
        assert_eq!(cnf.num_vars(), 1);
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn counting_sink_counts() {
        let mut cnf = Cnf::new();
        let (a, b);
        {
            let mut cs = CountingSink::new(&mut cnf);
            a = Lit::positive(cs.new_var());
            b = Lit::positive(cs.new_var());
            cs.add_clause(&[a, b]);
            cs.add_clause(&[!a, b]);
            assert_eq!(cs.vars_added(), 2);
            assert_eq!(cs.clauses_added(), 2);
            assert_eq!(cs.literals_added(), 4);
        }
        assert_eq!(cnf.num_clauses(), 2);
    }

    #[test]
    fn solver_is_a_sink() {
        let mut s = Solver::new();
        let v = CnfSink::new_var(&mut s);
        CnfSink::add_clause(&mut s, &[Lit::positive(v)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }
}
