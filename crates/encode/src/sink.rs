//! The [`CnfSink`] abstraction: anything clauses can be emitted into.
//!
//! The encoding helpers in this crate are generic over the sink so the same
//! encoder code can stream clauses directly into the [`olsq2_sat::Solver`],
//! collect them into a [`Cnf`] for DIMACS export, or pass through a
//! [`CountingSink`] that records formula-size statistics for the tables in
//! the paper.

use olsq2_sat::{Lit, Solver, Var};

/// A consumer of CNF clauses with its own variable allocator.
pub trait CnfSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Emits one clause.
    fn add_clause(&mut self, lits: &[Lit]);

    /// A literal constrained to be true (allocated lazily, at most once).
    fn true_lit(&mut self) -> Lit;

    /// A literal constrained to be false.
    fn false_lit(&mut self) -> Lit {
        !self.true_lit()
    }
}

impl CnfSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        Solver::add_clause(self, lits.iter().copied());
    }

    fn true_lit(&mut self) -> Lit {
        // The solver has no stored constant; allocate one per call site via
        // ConstPool in higher layers. For direct use, allocate and pin.
        let l = Lit::positive(Solver::new_var(self));
        Solver::add_clause(self, [l]);
        l
    }
}

/// An owned CNF formula, collectible for DIMACS export and inspection.
///
/// # Examples
///
/// ```
/// use olsq2_encode::{Cnf, CnfSink};
/// use olsq2_sat::Lit;
/// let mut cnf = Cnf::new();
/// let a = Lit::positive(cnf.new_var());
/// let b = Lit::positive(cnf.new_var());
/// cnf.add_clause(&[a, b]);
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.num_clauses(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    true_lit: Option<Lit>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of collected clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// The collected clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Loads every clause into a fresh solver (allocating its variables).
    pub fn load_into(&self, solver: &mut Solver) {
        while solver.num_vars() < self.num_vars {
            solver.new_var();
        }
        for c in &self.clauses {
            solver.add_clause(c.iter().copied());
        }
    }
}

impl CnfSink for Cnf {
    fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }

    fn true_lit(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = Lit::positive(self.new_var());
        self.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }
}

/// Stages clauses into one reusable flat literal buffer and hands them
/// to the solver in bulk via [`Solver::add_clause_batch`], instead of
/// paying a call (and a scratch round-trip) per clause.
///
/// Variable allocation and [`CnfSink::true_lit`] pass straight through;
/// only clause emission is deferred. Staged clauses reach the solver in
/// emission order on [`flush`](BatchSink::flush) — called automatically
/// when the buffer crosses its high-water mark and on drop — so the sink
/// is transparent to encoders as long as nobody reads the solver's
/// clause counts mid-batch (flush first, or drop the sink).
///
/// # Examples
///
/// ```
/// use olsq2_encode::{BatchSink, CnfSink};
/// use olsq2_sat::{Lit, SolveResult, Solver};
/// let mut solver = Solver::new();
/// let mut batch = BatchSink::new(&mut solver);
/// let a = Lit::positive(batch.new_var());
/// let b = Lit::positive(batch.new_var());
/// batch.add_clause(&[a, b]);
/// batch.add_clause(&[!a]);
/// drop(batch); // flushes
/// assert_eq!(solver.solve(&[]), SolveResult::Sat);
/// assert_eq!(solver.model_value(b), Some(true));
/// ```
#[derive(Debug)]
pub struct BatchSink<'a> {
    solver: &'a mut Solver,
    /// All staged literals, clause after clause.
    flat: Vec<Lit>,
    /// Exclusive end offset of each staged clause in `flat`.
    ends: Vec<u32>,
}

/// Literal high-water mark that triggers an automatic flush; bounds the
/// staging memory without making small batches pay for it.
const BATCH_FLUSH_LITS: usize = 1 << 16;

impl<'a> BatchSink<'a> {
    /// Wraps `solver` with an empty staging buffer.
    pub fn new(solver: &'a mut Solver) -> BatchSink<'a> {
        BatchSink {
            solver,
            flat: Vec::new(),
            ends: Vec::new(),
        }
    }

    /// Number of clauses currently staged (diagnostics/tests).
    pub fn staged(&self) -> usize {
        self.ends.len()
    }

    /// Hands every staged clause to the solver, in emission order.
    pub fn flush(&mut self) {
        if self.ends.is_empty() {
            return;
        }
        self.solver.add_clause_batch(&self.flat, &self.ends);
        self.flat.clear();
        self.ends.clear();
    }
}

impl Drop for BatchSink<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl CnfSink for BatchSink<'_> {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self.solver)
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        self.flat.extend_from_slice(lits);
        self.ends.push(self.flat.len() as u32);
        if self.flat.len() >= BATCH_FLUSH_LITS {
            self.flush();
        }
    }

    fn true_lit(&mut self) -> Lit {
        // Keep the solver's per-call contract (see the Solver impl); the
        // unit is staged so it lands in emission order.
        let l = Lit::positive(Solver::new_var(self.solver));
        CnfSink::add_clause(self, &[l]);
        l
    }
}

/// Wraps a sink, counting variables and clauses that pass through.
///
/// Used by the experiment harness to report formula sizes alongside solve
/// times (the paper's "fewer variables and constraints" claim).
#[derive(Debug)]
pub struct CountingSink<'a, S> {
    inner: &'a mut S,
    vars: usize,
    clauses: usize,
    literals: usize,
}

impl<'a, S: CnfSink> CountingSink<'a, S> {
    /// Wraps `inner`, counting from zero.
    pub fn new(inner: &'a mut S) -> Self {
        CountingSink {
            inner,
            vars: 0,
            clauses: 0,
            literals: 0,
        }
    }

    /// Variables allocated through this wrapper.
    pub fn vars_added(&self) -> usize {
        self.vars
    }

    /// Clauses emitted through this wrapper.
    pub fn clauses_added(&self) -> usize {
        self.clauses
    }

    /// Literal occurrences emitted through this wrapper.
    pub fn literals_added(&self) -> usize {
        self.literals
    }
}

impl<S: CnfSink> CnfSink for CountingSink<'_, S> {
    fn new_var(&mut self) -> Var {
        self.vars += 1;
        self.inner.new_var()
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses += 1;
        self.literals += lits.len();
        self.inner.add_clause(lits);
    }

    fn true_lit(&mut self) -> Lit {
        self.inner.true_lit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::SolveResult;

    #[test]
    fn cnf_collects_and_loads() {
        let mut cnf = Cnf::new();
        let a = Lit::positive(cnf.new_var());
        let b = Lit::positive(cnf.new_var());
        cnf.add_clause(&[a, b]);
        cnf.add_clause(&[!a]);
        let mut s = Solver::new();
        cnf.load_into(&mut s);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(b), Some(true));
    }

    #[test]
    fn cnf_true_lit_is_cached() {
        let mut cnf = Cnf::new();
        let t1 = cnf.true_lit();
        let t2 = cnf.true_lit();
        assert_eq!(t1, t2);
        assert_eq!(cnf.num_vars(), 1);
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn counting_sink_counts() {
        let mut cnf = Cnf::new();
        let (a, b);
        {
            let mut cs = CountingSink::new(&mut cnf);
            a = Lit::positive(cs.new_var());
            b = Lit::positive(cs.new_var());
            cs.add_clause(&[a, b]);
            cs.add_clause(&[!a, b]);
            assert_eq!(cs.vars_added(), 2);
            assert_eq!(cs.clauses_added(), 2);
            assert_eq!(cs.literals_added(), 4);
        }
        assert_eq!(cnf.num_clauses(), 2);
    }

    #[test]
    fn batch_sink_stages_and_flushes_in_order() {
        let mut direct = Solver::new();
        let mut batched = Solver::new();
        let lits: Vec<Lit> = (0..4)
            .map(|_| {
                Lit::positive(Solver::new_var(&mut direct));
                Lit::positive(Solver::new_var(&mut batched))
            })
            .collect();
        let clauses: [&[Lit]; 4] = [
            &[lits[0], lits[1]],
            &[!lits[0], lits[2]],
            &[!lits[1], !lits[2], lits[3]],
            &[!lits[3]],
        ];
        for c in clauses {
            Solver::add_clause(&mut direct, c.iter().copied());
        }
        {
            let mut batch = BatchSink::new(&mut batched);
            for c in clauses {
                CnfSink::add_clause(&mut batch, c);
            }
            assert_eq!(batch.staged(), 4, "small batches stay staged");
        } // drop flushes
        assert_eq!(batched.num_clauses(), direct.num_clauses());
        assert_eq!(batched.solve(&[]), direct.solve(&[]));
    }

    #[test]
    fn batch_sink_hits_conflicts_like_direct_adds() {
        let mut s = Solver::new();
        let a = Lit::positive(Solver::new_var(&mut s));
        {
            let mut batch = BatchSink::new(&mut s);
            CnfSink::add_clause(&mut batch, &[a]);
            CnfSink::add_clause(&mut batch, &[!a]);
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn solver_is_a_sink() {
        let mut s = Solver::new();
        let v = CnfSink::new_var(&mut s);
        CnfSink::add_clause(&mut s, &[Lit::positive(v)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }
}
