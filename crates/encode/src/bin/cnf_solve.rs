//! `cnf_solve` — a standalone DIMACS CNF solver over the `olsq2-sat`
//! engine, with optional SatELite-style preprocessing.
//!
//! ```text
//! cnf_solve [--no-preprocess] [--budget <secs>] <file.cnf | ->
//! ```
//!
//! Prints `s SATISFIABLE` with a `v …` model line, `s UNSATISFIABLE`, or
//! `s UNKNOWN`, following the SAT-competition output conventions. Useful
//! for debugging exported instances (`olsq2_encode::to_dimacs`).

use olsq2_encode::from_dimacs;
use olsq2_sat::{Lit, Preprocessor, SolveResult, Solver, Var};
use std::io::Read;
use std::time::{Duration, Instant};

fn main() {
    let mut path: Option<String> = None;
    let mut preprocess = true;
    let mut budget: Option<Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--no-preprocess" => preprocess = false,
            "--budget" => {
                let secs: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--budget needs seconds");
                budget = Some(Duration::from_secs(secs));
            }
            "--help" | "-h" => {
                eprintln!("usage: cnf_solve [--no-preprocess] [--budget <secs>] <file.cnf | ->");
                return;
            }
            other => path = Some(other.to_string()),
        }
    }
    let text = match path.as_deref() {
        Some("-") | None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("read stdin");
            buf
        }
        Some(p) => std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        }),
    };
    let cnf = from_dimacs(&text).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        std::process::exit(2);
    });
    let start = Instant::now();

    let model: Option<Vec<bool>>;
    let mut solver = Solver::new();
    solver.set_deadline(budget.map(|b| start + b));
    let mut unknown = false;
    if preprocess {
        let pre = Preprocessor::new(cnf.num_vars(), cnf.clauses().iter().cloned());
        let simp = pre.run();
        eprintln!(
            "c preprocess: {} clauses -> {}, {} vars eliminated ({:?})",
            cnf.num_clauses(),
            simp.clauses().len(),
            simp.num_eliminated(),
            start.elapsed()
        );
        if simp.is_unsat() {
            model = None;
        } else {
            simp.load_into(&mut solver);
            match solver.solve(&[]) {
                SolveResult::Sat => {
                    let mut m: Vec<bool> = (0..cnf.num_vars())
                        .map(|i| {
                            solver
                                .model_value(Lit::positive(Var::from_index(i)))
                                .unwrap_or(false)
                        })
                        .collect();
                    simp.reconstruct(&mut m);
                    model = Some(m);
                }
                SolveResult::Unsat => model = None,
                SolveResult::Unknown => {
                    model = None;
                    unknown = true;
                }
            }
        }
    } else {
        cnf.load_into(&mut solver);
        match solver.solve(&[]) {
            SolveResult::Sat => {
                model = Some(
                    (0..cnf.num_vars())
                        .map(|i| {
                            solver
                                .model_value(Lit::positive(Var::from_index(i)))
                                .unwrap_or(false)
                        })
                        .collect(),
                );
            }
            SolveResult::Unsat => model = None,
            SolveResult::Unknown => {
                model = None;
                unknown = true;
            }
        }
    }
    let stats = solver.stats();
    eprintln!(
        "c conflicts={} decisions={} propagations={} time={:?}",
        stats.conflicts,
        stats.decisions,
        stats.propagations,
        start.elapsed()
    );
    match (model, unknown) {
        (Some(m), _) => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for (i, &v) in m.iter().enumerate() {
                line.push(' ');
                if !v {
                    line.push('-');
                }
                line.push_str(&(i + 1).to_string());
            }
            line.push_str(" 0");
            println!("{line}");
        }
        (None, true) => println!("s UNKNOWN"),
        (None, false) => println!("s UNSATISFIABLE"),
    }
}
