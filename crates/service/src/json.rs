//! A minimal JSON reader/writer for the service's manifest and result
//! formats.
//!
//! The workspace deliberately has no external dependencies (the solver,
//! encoders, and heuristics are all in-repo), so the JSONL wire format is
//! handled by this small, self-contained module instead of a serde stack.
//! It supports the full JSON value grammar minus exotic number forms
//! (numbers parse via `f64`, with exact integer round-tripping up to
//! 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys are ordered for deterministic output.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.get(key)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => write_number(*n, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Compact JSON serialization.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Number(n as f64)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

/// Builds a JSON object from `(key, value)` pairs, a shorthand for result
/// emission.
pub fn object<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null"); // JSON has no NaN/Inf
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub position: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value, optionally surrounded by
/// whitespace).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte position of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are replaced; the wire formats here
                            // never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_manifest_like_line() {
        let text = r#"{"name":"j1","device":"grid3x3","gates":[["cx",0,1],["rz",2,{"params":[0.5]}]],"deadline_ms":2000}"#;
        let v = parse(text).expect("parses");
        assert_eq!(v.get("name").unwrap().as_str(), Some("j1"));
        assert_eq!(v.get("deadline_ms").unwrap().as_u64(), Some(2000));
        let gates = v.get("gates").unwrap().as_array().unwrap();
        assert_eq!(gates.len(), 2);
        assert_eq!(gates[0].as_array().unwrap()[0].as_str(), Some("cx"));
        // Serialize → parse is identity.
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\ndAé""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("-12").unwrap().as_f64(), Some(-12.0));
        assert_eq!(parse("3.5e2").unwrap().as_f64(), Some(350.0));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::Number(5.0).to_string(), "5");
        assert_eq!(Json::Number(0.25).to_string(), "0.25");
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn object_builder_is_deterministic() {
        let o = object([("b", 1u64.into()), ("a", "x".into())]);
        assert_eq!(o.to_string(), r#"{"a":"x","b":1}"#);
    }
}
