//! Service-level metrics: job counters, latency percentiles, and
//! aggregated solver statistics.

use crate::cache::CacheStats;
use olsq2_sat::Stats;
use std::sync::Mutex;
use std::time::Duration;

/// Aggregated SAT-solver totals across all jobs a service has run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverTotals {
    /// Total conflicts.
    pub conflicts: u64,
    /// Total decisions.
    pub decisions: u64,
    /// Total unit propagations.
    pub propagations: u64,
    /// Total restarts.
    pub restarts: u64,
}

impl SolverTotals {
    fn add(&mut self, s: &Stats) {
        self.conflicts += s.conflicts;
        self.decisions += s.decisions;
        self.propagations += s.propagations;
        self.restarts += s.restarts;
    }
}

/// A point-in-time snapshot of a service's metrics.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs currently waiting in the queue.
    pub queued: u64,
    /// Jobs currently executing on a worker.
    pub running: u64,
    /// Jobs finished with a (possibly degraded) result.
    pub done: u64,
    /// Of the done jobs, how many were degraded to a best-so-far
    /// incumbent by their deadline.
    pub degraded: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Median end-to-end latency (submission → terminal) over completed
    /// jobs; zero when nothing completed yet.
    pub p50_latency: Duration,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: Duration,
    /// Aggregated solver statistics.
    pub solver: SolverTotals,
}

/// The service's internal metrics collector.
pub(crate) struct MetricsCollector {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    submitted: u64,
    queued: u64,
    running: u64,
    done: u64,
    degraded: u64,
    failed: u64,
    cancelled: u64,
    latencies_us: Vec<u64>,
    solver: SolverTotals,
}

impl MetricsCollector {
    pub(crate) fn new() -> MetricsCollector {
        MetricsCollector {
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("metrics lock")
    }

    pub(crate) fn on_submit(&self) {
        let mut m = self.lock();
        m.submitted += 1;
        m.queued += 1;
    }

    pub(crate) fn on_dequeue(&self) {
        let mut m = self.lock();
        m.queued = m.queued.saturating_sub(1);
        m.running += 1;
    }

    /// A queued job was dropped (cancelled) without ever running.
    pub(crate) fn on_cancel_queued(&self) {
        let mut m = self.lock();
        m.queued = m.queued.saturating_sub(1);
        m.cancelled += 1;
    }

    pub(crate) fn on_done(&self, latency: Duration, degraded: bool, stats: Option<&Stats>) {
        let mut m = self.lock();
        m.running = m.running.saturating_sub(1);
        m.done += 1;
        if degraded {
            m.degraded += 1;
        }
        m.latencies_us.push(latency.as_micros() as u64);
        if let Some(s) = stats {
            m.solver.add(s);
        }
    }

    pub(crate) fn on_failed(&self, latency: Duration) {
        let mut m = self.lock();
        m.running = m.running.saturating_sub(1);
        m.failed += 1;
        m.latencies_us.push(latency.as_micros() as u64);
    }

    pub(crate) fn on_cancel_running(&self) {
        let mut m = self.lock();
        m.running = m.running.saturating_sub(1);
        m.cancelled += 1;
    }

    pub(crate) fn snapshot(&self, cache: CacheStats) -> ServiceMetrics {
        let m = self.lock();
        let (p50, p95) = percentiles(&m.latencies_us);
        ServiceMetrics {
            submitted: m.submitted,
            queued: m.queued,
            running: m.running,
            done: m.done,
            degraded: m.degraded,
            failed: m.failed,
            cancelled: m.cancelled,
            cache,
            p50_latency: p50,
            p95_latency: p95,
            solver: m.solver,
        }
    }
}

/// Nearest-rank percentiles over the recorded latencies.
fn percentiles(latencies_us: &[u64]) -> (Duration, Duration) {
    if latencies_us.is_empty() {
        return (Duration::ZERO, Duration::ZERO);
    }
    let mut sorted = latencies_us.to_vec();
    sorted.sort_unstable();
    let rank = |p: f64| -> Duration {
        let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        Duration::from_micros(sorted[idx])
    };
    (rank(0.50), rank(0.95))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_ranks() {
        let us: Vec<u64> = (1..=100).collect();
        let (p50, p95) = percentiles(&us);
        assert_eq!(p50, Duration::from_micros(50));
        assert_eq!(p95, Duration::from_micros(95));
        let (one, _) = percentiles(&[7]);
        assert_eq!(one, Duration::from_micros(7));
        assert_eq!(percentiles(&[]), (Duration::ZERO, Duration::ZERO));
    }

    #[test]
    fn counters_flow_through_lifecycle() {
        let c = MetricsCollector::new();
        c.on_submit();
        c.on_submit();
        c.on_dequeue();
        c.on_done(Duration::from_millis(3), true, None);
        c.on_dequeue();
        c.on_failed(Duration::from_millis(1));
        let snap = c.snapshot(CacheStats::default());
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.queued, 0);
        assert_eq!(snap.running, 0);
        assert_eq!(snap.done, 1);
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.failed, 1);
        assert!(snap.p95_latency >= snap.p50_latency);
    }
}
