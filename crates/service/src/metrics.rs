//! Service-level metrics: job counters, latency percentiles, and
//! aggregated solver statistics.

use crate::cache::CacheStats;
use olsq2_sat::Stats;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Aggregated SAT-solver totals across all jobs a service has run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverTotals {
    /// Total conflicts.
    pub conflicts: u64,
    /// Total decisions.
    pub decisions: u64,
    /// Total unit propagations.
    pub propagations: u64,
    /// Total restarts.
    pub restarts: u64,
    /// Learned clauses retained at the end of each job's last solve,
    /// summed over jobs.
    pub learnts: u64,
    /// Total learned-clause database reductions.
    pub reduces: u64,
    /// Total literals deleted by conflict-clause minimization.
    pub minimized_lits: u64,
}

impl SolverTotals {
    fn add(&mut self, s: &Stats) {
        self.conflicts += s.conflicts;
        self.decisions += s.decisions;
        self.propagations += s.propagations;
        self.restarts += s.restarts;
        self.learnts += s.learnts;
        self.reduces += s.reduces;
        self.minimized_lits += s.minimized_lits;
    }
}

/// Per-tenant job accounting (see
/// [`crate::SynthesisRequest::tenant`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Jobs accepted for this tenant.
    pub submitted: u64,
    /// Jobs finished with a (possibly degraded) result.
    pub done: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Median end-to-end latency over this tenant's completed jobs.
    pub p50_latency: Duration,
    /// 95th-percentile end-to-end latency for this tenant.
    pub p95_latency: Duration,
}

/// A point-in-time snapshot of a service's metrics.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs currently waiting in the queue.
    pub queued: u64,
    /// Jobs currently executing on a worker.
    pub running: u64,
    /// Jobs finished with a (possibly degraded) result.
    pub done: u64,
    /// Of the done jobs, how many were degraded to a best-so-far
    /// incumbent by their deadline.
    pub degraded: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Median end-to-end latency (submission → terminal) over completed
    /// jobs; zero when nothing completed yet.
    pub p50_latency: Duration,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: Duration,
    /// Aggregated solver statistics.
    pub solver: SolverTotals,
    /// In-place window extensions performed across all jobs (zero when
    /// the incremental encoding path is disabled).
    pub window_extensions: u64,
    /// Worker threads in the pool; zero when the snapshot came from a
    /// context that does not know the pool size.
    pub workers: u64,
    /// Per-tenant job accounting, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantStats>,
}

/// The service's internal metrics collector.
pub(crate) struct MetricsCollector {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    submitted: u64,
    queued: u64,
    running: u64,
    done: u64,
    degraded: u64,
    failed: u64,
    cancelled: u64,
    latencies_us: Vec<u64>,
    solver: SolverTotals,
    window_extensions: u64,
    tenants: BTreeMap<String, TenantInner>,
}

#[derive(Default)]
struct TenantInner {
    submitted: u64,
    done: u64,
    failed: u64,
    cancelled: u64,
    latencies_us: Vec<u64>,
}

impl MetricsCollector {
    pub(crate) fn new() -> MetricsCollector {
        MetricsCollector {
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("metrics lock")
    }

    pub(crate) fn on_submit(&self, tenant: &str) {
        let mut m = self.lock();
        m.submitted += 1;
        m.queued += 1;
        m.tenant(tenant).submitted += 1;
    }

    pub(crate) fn on_dequeue(&self) {
        let mut m = self.lock();
        m.queued = m.queued.saturating_sub(1);
        m.running += 1;
    }

    /// A queued job was dropped (cancelled) without ever running.
    pub(crate) fn on_cancel_queued(&self, tenant: &str) {
        let mut m = self.lock();
        m.queued = m.queued.saturating_sub(1);
        m.cancelled += 1;
        m.tenant(tenant).cancelled += 1;
    }

    pub(crate) fn on_done(
        &self,
        latency: Duration,
        degraded: bool,
        stats: Option<&Stats>,
        tenant: &str,
    ) {
        let mut m = self.lock();
        m.running = m.running.saturating_sub(1);
        m.done += 1;
        if degraded {
            m.degraded += 1;
        }
        m.latencies_us.push(latency.as_micros() as u64);
        if let Some(s) = stats {
            m.solver.add(s);
        }
        let t = m.tenant(tenant);
        t.done += 1;
        t.latencies_us.push(latency.as_micros() as u64);
    }

    /// Credits in-place window extensions performed by a finished job.
    pub(crate) fn on_extensions(&self, n: u64) {
        if n > 0 {
            self.lock().window_extensions += n;
        }
    }

    pub(crate) fn on_failed(&self, latency: Duration, tenant: &str) {
        let mut m = self.lock();
        m.running = m.running.saturating_sub(1);
        m.failed += 1;
        m.latencies_us.push(latency.as_micros() as u64);
        let t = m.tenant(tenant);
        t.failed += 1;
        t.latencies_us.push(latency.as_micros() as u64);
    }

    pub(crate) fn on_cancel_running(&self, tenant: &str) {
        let mut m = self.lock();
        m.running = m.running.saturating_sub(1);
        m.cancelled += 1;
        m.tenant(tenant).cancelled += 1;
    }

    pub(crate) fn snapshot(&self, cache: CacheStats) -> ServiceMetrics {
        let m = self.lock();
        let (p50, p95, p99) = percentiles(&m.latencies_us);
        let tenants = m
            .tenants
            .iter()
            .map(|(name, t)| {
                let (p50, p95, _) = percentiles(&t.latencies_us);
                (
                    name.clone(),
                    TenantStats {
                        submitted: t.submitted,
                        done: t.done,
                        failed: t.failed,
                        cancelled: t.cancelled,
                        p50_latency: p50,
                        p95_latency: p95,
                    },
                )
            })
            .collect();
        ServiceMetrics {
            submitted: m.submitted,
            queued: m.queued,
            running: m.running,
            done: m.done,
            degraded: m.degraded,
            failed: m.failed,
            cancelled: m.cancelled,
            cache,
            p50_latency: p50,
            p95_latency: p95,
            p99_latency: p99,
            solver: m.solver,
            window_extensions: m.window_extensions,
            workers: 0,
            tenants,
        }
    }
}

impl Inner {
    fn tenant(&mut self, name: &str) -> &mut TenantInner {
        // entry() would allocate the key on every call; tenant sets are
        // tiny, so probe first.
        if !self.tenants.contains_key(name) {
            self.tenants
                .insert(name.to_string(), TenantInner::default());
        }
        self.tenants.get_mut(name).expect("just inserted")
    }
}

/// Nearest-rank (p50, p95, p99) over the recorded latencies.
fn percentiles(latencies_us: &[u64]) -> (Duration, Duration, Duration) {
    if latencies_us.is_empty() {
        return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    }
    let mut sorted = latencies_us.to_vec();
    sorted.sort_unstable();
    let rank = |p: f64| -> Duration {
        let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        Duration::from_micros(sorted[idx])
    };
    (rank(0.50), rank(0.95), rank(0.99))
}

/// Renders a metrics snapshot plus the recorder's counters in the
/// Prometheus text exposition format (version 0.0.4).
///
/// Service gauges/counters come out under the `olsq2_` prefix; recorder
/// counters (e.g. `sat.conflicts`) are sanitized into metric names
/// (`olsq2_sat_conflicts`). Pass a disabled recorder to expose the
/// service metrics alone.
pub fn prometheus_text(m: &ServiceMetrics, recorder: &olsq2_obs::Recorder) -> String {
    let mut prom = olsq2_obs::PromText::new();
    prom.counter("olsq2_jobs_submitted", "Jobs accepted", m.submitted as f64);
    prom.gauge(
        "olsq2_jobs_queued",
        "Jobs waiting in the queue",
        m.queued as f64,
    );
    prom.gauge(
        "olsq2_jobs_running",
        "Jobs executing on a worker",
        m.running as f64,
    );
    prom.counter(
        "olsq2_jobs_done",
        "Jobs finished with a result",
        m.done as f64,
    );
    prom.counter(
        "olsq2_jobs_degraded",
        "Done jobs degraded to a best-so-far incumbent",
        m.degraded as f64,
    );
    prom.counter("olsq2_jobs_failed", "Jobs that failed", m.failed as f64);
    prom.counter("olsq2_jobs_cancelled", "Jobs cancelled", m.cancelled as f64);
    prom.counter("olsq2_cache_hits", "Result-cache hits", m.cache.hits as f64);
    prom.counter(
        "olsq2_cache_misses",
        "Result-cache misses",
        m.cache.misses as f64,
    );
    prom.counter(
        "olsq2_cache_evictions",
        "Result-cache evictions",
        m.cache.evictions as f64,
    );
    prom.gauge(
        "olsq2_latency_p50_us",
        "Median end-to-end latency (us)",
        m.p50_latency.as_micros() as f64,
    );
    prom.gauge(
        "olsq2_latency_p95_us",
        "95th-percentile end-to-end latency (us)",
        m.p95_latency.as_micros() as f64,
    );
    prom.gauge(
        "olsq2_latency_p99_us",
        "99th-percentile end-to-end latency (us)",
        m.p99_latency.as_micros() as f64,
    );
    prom.counter(
        "olsq2_solver_conflicts",
        "SAT conflicts across jobs",
        m.solver.conflicts as f64,
    );
    prom.counter(
        "olsq2_solver_decisions",
        "SAT decisions across jobs",
        m.solver.decisions as f64,
    );
    prom.counter(
        "olsq2_solver_propagations",
        "SAT propagations across jobs",
        m.solver.propagations as f64,
    );
    prom.counter(
        "olsq2_solver_restarts",
        "SAT restarts across jobs",
        m.solver.restarts as f64,
    );
    prom.counter(
        "olsq2_solver_learnts",
        "Learned clauses retained across jobs",
        m.solver.learnts as f64,
    );
    prom.counter(
        "olsq2_solver_reduces",
        "Learned-clause DB reductions across jobs",
        m.solver.reduces as f64,
    );
    prom.counter(
        "olsq2_solver_minimized_lits",
        "Literals removed by clause minimization across jobs",
        m.solver.minimized_lits as f64,
    );
    prom.counter(
        "olsq2_window_extensions",
        "In-place encoding window extensions across jobs",
        m.window_extensions as f64,
    );
    if m.workers > 0 {
        prom.gauge(
            "olsq2_workers",
            "Worker threads in the pool",
            m.workers as f64,
        );
        prom.gauge(
            "olsq2_workers_busy",
            "Worker threads currently executing a job",
            m.running as f64,
        );
    }
    for (tenant, t) in &m.tenants {
        let labels: &[(&str, &str)] = &[("tenant", tenant.as_str())];
        prom.counter_labeled(
            "olsq2_tenant_jobs_submitted",
            "Jobs accepted, by tenant",
            labels,
            t.submitted as f64,
        );
        prom.counter_labeled(
            "olsq2_tenant_jobs_done",
            "Jobs finished with a result, by tenant",
            labels,
            t.done as f64,
        );
        prom.counter_labeled(
            "olsq2_tenant_jobs_failed",
            "Jobs that failed, by tenant",
            labels,
            t.failed as f64,
        );
        prom.counter_labeled(
            "olsq2_tenant_jobs_cancelled",
            "Jobs cancelled, by tenant",
            labels,
            t.cancelled as f64,
        );
        prom.gauge_labeled(
            "olsq2_tenant_latency_p50_us",
            "Median end-to-end latency (us), by tenant",
            labels,
            t.p50_latency.as_micros() as f64,
        );
        prom.gauge_labeled(
            "olsq2_tenant_latency_p95_us",
            "95th-percentile end-to-end latency (us), by tenant",
            labels,
            t.p95_latency.as_micros() as f64,
        );
    }
    if recorder.is_enabled() {
        let snap = recorder.snapshot();
        for (name, value) in &snap.counters {
            prom.counter(
                &format!("olsq2_{name}"),
                "Recorder counter (olsq2-obs)",
                *value as f64,
            );
        }
        for (name, summary) in &snap.histograms {
            prom.histogram(
                &format!("olsq2_{name}"),
                "Recorder log2 histogram (olsq2-obs)",
                &[],
                summary,
            );
        }
    }
    prom.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_ranks() {
        let us: Vec<u64> = (1..=100).collect();
        let (p50, p95, p99) = percentiles(&us);
        assert_eq!(p50, Duration::from_micros(50));
        assert_eq!(p95, Duration::from_micros(95));
        assert_eq!(p99, Duration::from_micros(99));
    }

    #[test]
    fn percentiles_of_empty_input_are_zero() {
        assert_eq!(
            percentiles(&[]),
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        );
    }

    #[test]
    fn percentiles_of_single_sample_all_equal_it() {
        let seven = Duration::from_micros(7);
        assert_eq!(percentiles(&[7]), (seven, seven, seven));
    }

    #[test]
    fn percentiles_with_ties_pick_the_tied_value() {
        // 9 copies of 10 and one 1000: p50 (rank ceil(5) = 5) stays in
        // the tied run, while p95 and p99 (ranks ceil(9.5) = ceil(9.9)
        // = 10) both reach the outlier.
        let us = [10, 10, 10, 10, 10, 10, 10, 10, 10, 1000];
        let (p50, p95, p99) = percentiles(&us);
        assert_eq!(p50, Duration::from_micros(10));
        assert_eq!(p95, Duration::from_micros(1000));
        assert_eq!(p99, Duration::from_micros(1000));
        // All samples identical: every percentile is that value.
        let (a, b, c) = percentiles(&[42; 16]);
        assert_eq!(
            (a, b, c),
            (
                Duration::from_micros(42),
                Duration::from_micros(42),
                Duration::from_micros(42)
            )
        );
    }

    #[test]
    fn prometheus_text_exposes_service_and_recorder_metrics() {
        let metrics = ServiceMetrics {
            submitted: 3,
            done: 2,
            p99_latency: Duration::from_micros(1500),
            ..ServiceMetrics::default()
        };
        let recorder = olsq2_obs::Recorder::new();
        recorder.add("sat.conflicts", 17);
        recorder.add("sat.vivified", 4);
        recorder.add("sat.strengthened", 2);
        recorder.add("sat.binary_props", 900);
        recorder.add("sat.tier_demotions", 6);
        recorder.add("cube.cubes_split", 5);
        recorder.add("cube.cubes_refuted", 4);
        recorder.add("cube.cubes_pruned_by_core", 1);
        recorder.add("cube.steals", 3);
        recorder.add("cube.resplits", 2);
        let text = prometheus_text(&metrics, &recorder);
        assert!(text.contains("# TYPE olsq2_jobs_submitted counter"));
        assert!(text.contains("olsq2_jobs_submitted 3"));
        assert!(text.contains("olsq2_latency_p99_us 1500"));
        assert!(text.contains("olsq2_sat_conflicts 17"));
        // Inprocessing/kernel telemetry rides the same recorder path.
        assert!(text.contains("olsq2_sat_vivified 4"));
        assert!(text.contains("olsq2_sat_strengthened 2"));
        assert!(text.contains("olsq2_sat_binary_props 900"));
        assert!(text.contains("olsq2_sat_tier_demotions 6"));
        // Cube-and-conquer scheduler counters ride the same recorder path.
        assert!(text.contains("olsq2_cube_cubes_split 5"));
        assert!(text.contains("olsq2_cube_cubes_refuted 4"));
        assert!(text.contains("olsq2_cube_cubes_pruned_by_core 1"));
        assert!(text.contains("olsq2_cube_steals 3"));
        assert!(text.contains("olsq2_cube_resplits 2"));
        // Disabled recorder: service metrics only, no panic.
        let plain = prometheus_text(&metrics, &olsq2_obs::Recorder::disabled());
        assert!(plain.contains("olsq2_jobs_done 2"));
        assert!(!plain.contains("olsq2_sat_conflicts"));
    }

    #[test]
    fn counters_flow_through_lifecycle() {
        let c = MetricsCollector::new();
        c.on_submit("team-a");
        c.on_submit("team-b");
        c.on_dequeue();
        c.on_done(Duration::from_millis(3), true, None, "team-a");
        c.on_dequeue();
        c.on_failed(Duration::from_millis(1), "team-b");
        let snap = c.snapshot(CacheStats::default());
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.queued, 0);
        assert_eq!(snap.running, 0);
        assert_eq!(snap.done, 1);
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.failed, 1);
        assert!(snap.p95_latency >= snap.p50_latency);
        // Per-tenant accounting splits the same events by tenant.
        let a = &snap.tenants["team-a"];
        assert_eq!((a.submitted, a.done, a.failed), (1, 1, 0));
        assert_eq!(a.p50_latency, Duration::from_millis(3));
        let b = &snap.tenants["team-b"];
        assert_eq!((b.submitted, b.done, b.failed), (1, 0, 1));
    }

    #[test]
    fn prometheus_text_labels_tenants_and_workers() {
        let mut metrics = ServiceMetrics {
            running: 2,
            workers: 4,
            ..ServiceMetrics::default()
        };
        metrics.tenants.insert(
            "team-a".to_string(),
            TenantStats {
                submitted: 3,
                done: 2,
                failed: 1,
                cancelled: 0,
                p50_latency: Duration::from_micros(500),
                p95_latency: Duration::from_micros(900),
            },
        );
        let text = prometheus_text(&metrics, &olsq2_obs::Recorder::disabled());
        assert!(text.contains("olsq2_workers 4"), "{text}");
        assert!(text.contains("olsq2_workers_busy 2"), "{text}");
        assert!(
            text.contains("olsq2_tenant_jobs_submitted{tenant=\"team-a\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("olsq2_tenant_latency_p95_us{tenant=\"team-a\"} 900"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_text_exposes_recorder_histograms() {
        let recorder = olsq2_obs::Recorder::new();
        recorder.observe("solve_us", 3);
        recorder.observe("solve_us", 90);
        let text = prometheus_text(&ServiceMetrics::default(), &recorder);
        assert!(text.contains("# TYPE olsq2_solve_us histogram"), "{text}");
        assert!(text.contains("olsq2_solve_us_count 2"), "{text}");
        assert!(text.contains("le=\"+Inf\"} 2"), "{text}");
    }
}
