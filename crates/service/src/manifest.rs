//! JSONL manifests: the batch wire format of `olsq2 serve-batch`.
//!
//! Each input line is one JSON object describing a job:
//!
//! ```json
//! {"name": "adder-0", "tenant": "team-a", "device": "grid3x3",
//!  "objective": "depth", "swap_duration": 1, "deadline_ms": 2000,
//!  "priority": "high",
//!  "circuit": {"num_qubits": 3, "gates": [["cx",0,1], ["h",2], ["rz",0,[0.5]]]}}
//! ```
//!
//! A gate is `[name, qubit]` or `[name, qubit, qubit]`, optionally
//! followed by a parameter array (e.g. `["rz", 0, [0.5]]`). The optional
//! `tenant` (default `"default"`) feeds per-tenant accounting
//! ([`crate::ServiceMetrics::tenants`] and the `tenant="..."` Prometheus
//! labels) and is echoed on the job's result line. Each output line
//! mirrors one job, in submission order, followed by a final
//! `{"metrics": ...}` summary line.

use crate::json::{self, object, Json};
use crate::request::{JobStatus, Objective, Priority, SynthesisRequest};
use crate::service::{ServiceConfig, SubmitError, SynthesisService};
use crate::ServiceMetrics;
use olsq2::{CubeParams, EncodingConfig, SynthesisConfig};
use olsq2_arch::device_by_name;
use olsq2_circuit::{Circuit, Gate, GateKind, Operands};
use std::time::Duration;

/// A manifest parse failure, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line number in the manifest.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ManifestError {}

fn gate_from_parts(name: &str, qubits: &[u16], params: &[f64]) -> Result<Gate, String> {
    let want = |n: usize| -> Result<(), String> {
        if params.len() == n {
            Ok(())
        } else {
            Err(format!(
                "gate {name:?} expects {n} parameter(s), got {}",
                params.len()
            ))
        }
    };
    let kind = match name {
        "id" => GateKind::Id,
        "h" => GateKind::H,
        "x" => GateKind::X,
        "y" => GateKind::Y,
        "z" => GateKind::Z,
        "s" => GateKind::S,
        "sdg" => GateKind::Sdg,
        "t" => GateKind::T,
        "tdg" => GateKind::Tdg,
        "rx" => {
            want(1)?;
            GateKind::Rx(params[0])
        }
        "ry" => {
            want(1)?;
            GateKind::Ry(params[0])
        }
        "rz" => {
            want(1)?;
            GateKind::Rz(params[0])
        }
        "u3" => {
            want(3)?;
            GateKind::U(params[0], params[1], params[2])
        }
        "cx" => GateKind::Cx,
        "cz" => GateKind::Cz,
        "cp" => {
            want(1)?;
            GateKind::Cp(params[0])
        }
        "rzz" => {
            want(1)?;
            GateKind::Zz(params[0])
        }
        "swap" => GateKind::Swap,
        other => GateKind::Other {
            name: other.into(),
            params: params.to_vec(),
        },
    };
    let operands = match qubits {
        [q] => Operands::One(*q),
        [a, b] if a != b => Operands::Two(*a, *b),
        [a, b] => return Err(format!("gate {name:?} repeats qubit {a} (got {a},{b})")),
        _ => {
            return Err(format!(
                "gate {name:?} needs 1 or 2 qubits, got {}",
                qubits.len()
            ))
        }
    };
    Ok(Gate::new(kind, operands))
}

fn parse_circuit(value: &Json) -> Result<Circuit, String> {
    let num_qubits = value
        .get("num_qubits")
        .and_then(Json::as_u64)
        .ok_or("circuit.num_qubits must be a non-negative integer")? as usize;
    if num_qubits == 0 || num_qubits > u16::MAX as usize {
        return Err(format!("circuit.num_qubits {num_qubits} out of range"));
    }
    let gates = value
        .get("gates")
        .and_then(Json::as_array)
        .ok_or("circuit.gates must be an array")?;
    let mut circuit = Circuit::new(num_qubits);
    for (i, gate) in gates.iter().enumerate() {
        let parts = gate
            .as_array()
            .ok_or_else(|| format!("gate #{i} must be an array"))?;
        let name = parts
            .first()
            .and_then(Json::as_str)
            .ok_or_else(|| format!("gate #{i} must start with a name string"))?;
        let mut qubits: Vec<u16> = Vec::new();
        let mut params: Vec<f64> = Vec::new();
        for part in &parts[1..] {
            match part {
                Json::Number(_) => {
                    let q = part
                        .as_u64()
                        .filter(|&q| (q as usize) < num_qubits)
                        .ok_or_else(|| format!("gate #{i}: qubit out of range"))?;
                    qubits.push(q as u16);
                }
                Json::Array(items) => {
                    for p in items {
                        params.push(
                            p.as_f64()
                                .ok_or_else(|| format!("gate #{i}: non-numeric parameter"))?,
                        );
                    }
                }
                _ => return Err(format!("gate #{i}: unexpected element")),
            }
        }
        circuit
            .push(gate_from_parts(name, &qubits, &params).map_err(|e| format!("gate #{i}: {e}"))?);
    }
    Ok(circuit)
}

fn parse_encoding(name: &str) -> Option<EncodingConfig> {
    match name {
        "int" => Some(EncodingConfig::int()),
        "bv" => Some(EncodingConfig::bv()),
        "euf" | "euf-int" => Some(EncodingConfig::euf_int()),
        "euf-bv" => Some(EncodingConfig::euf_bv()),
        _ => None,
    }
}

/// Parses one manifest line into a request.
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn parse_request(line: &str) -> Result<SynthesisRequest, String> {
    let value = json::parse(line).map_err(|e| e.to_string())?;
    let name = value
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("unnamed")
        .to_string();
    let tenant = value
        .get("tenant")
        .and_then(Json::as_str)
        .unwrap_or("default")
        .to_string();
    let device_name = value
        .get("device")
        .and_then(Json::as_str)
        .ok_or("missing \"device\"")?;
    let device =
        device_by_name(device_name).ok_or_else(|| format!("unknown device {device_name:?}"))?;
    let circuit = parse_circuit(value.get("circuit").ok_or("missing \"circuit\"")?)?;
    if circuit.num_qubits() > device.num_qubits() {
        return Err(format!(
            "circuit has {} qubits but device {device_name} only {}",
            circuit.num_qubits(),
            device.num_qubits()
        ));
    }
    let objective = match value.get("objective").and_then(Json::as_str) {
        None => Objective::Depth,
        Some(s) => Objective::parse(s).ok_or_else(|| format!("unknown objective {s:?}"))?,
    };
    let priority = match value.get("priority").and_then(Json::as_str) {
        None => Priority::Normal,
        Some(s) => Priority::parse(s).ok_or_else(|| format!("unknown priority {s:?}"))?,
    };
    let mut config = SynthesisConfig::default();
    if let Some(sd) = value.get("swap_duration") {
        config.swap_duration = sd
            .as_u64()
            .filter(|&n| (1..=64).contains(&n))
            .ok_or("swap_duration must be in 1..=64")? as usize;
    }
    if let Some(enc) = value.get("encoding").and_then(Json::as_str) {
        config.encoding = parse_encoding(enc).ok_or_else(|| format!("unknown encoding {enc:?}"))?;
    }
    if let Some(b) = value.get("budget_ms") {
        config.time_budget = Some(Duration::from_millis(
            b.as_u64().ok_or("budget_ms must be an integer")?,
        ));
    }
    if let Some(lim) = value.get("pareto_relax_limit") {
        config.pareto_relax_limit = Some(
            lim.as_u64()
                .ok_or("pareto_relax_limit must be an integer")? as usize,
        );
    }
    if let Some(c) = value.get("commutation_aware") {
        config.commutation_aware = c.as_bool().ok_or("commutation_aware must be a bool")?;
    }
    if let Some(inc) = value.get("incremental") {
        config.incremental = inc.as_bool().ok_or("incremental must be a bool")?;
    }
    // `legacy_solver` pins the job to the pre-modernization search policies
    // (no chronological backtracking, glucose restarts, target phases, or
    // structure seeding) — the service-side twin of the CLI's
    // `--legacy-solver` flag, useful for A/B manifests.
    if let Some(legacy) = value.get("legacy_solver") {
        if legacy.as_bool().ok_or("legacy_solver must be a bool")? {
            config.solver_features = olsq2_sat::SolverFeatures::legacy();
        }
    }
    let deadline = match value.get("deadline_ms") {
        None => None,
        Some(d) => Some(Duration::from_millis(
            d.as_u64().ok_or("deadline_ms must be an integer")?,
        )),
    };
    // `cube_workers` opts the job into cube-and-conquer (depth objective
    // only); `cube_depth` additionally tunes the split-tree depth.
    let cube = match (value.get("cube_workers"), value.get("cube_depth")) {
        (None, None) => None,
        (workers, depth) => {
            let mut params = CubeParams::default();
            if let Some(w) = workers {
                params.workers =
                    w.as_u64()
                        .filter(|&n| (1..=64).contains(&n))
                        .ok_or("cube_workers must be in 1..=64")? as usize;
            }
            if let Some(d) = depth {
                params.depth = d
                    .as_u64()
                    .filter(|&n| (1..=16).contains(&n))
                    .ok_or("cube_depth must be in 1..=16")? as usize;
            }
            Some(params)
        }
    };
    Ok(SynthesisRequest {
        name,
        tenant,
        circuit,
        device,
        config,
        objective,
        deadline,
        priority,
        cube,
    })
}

/// Parses a whole JSONL manifest (blank lines and `#` comments skipped).
///
/// # Errors
///
/// The first offending line, with its line number.
pub fn parse_manifest(text: &str) -> Result<Vec<SynthesisRequest>, ManifestError> {
    let mut requests = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        requests.push(parse_request(trimmed).map_err(|message| ManifestError {
            line: i + 1,
            message,
        })?);
    }
    Ok(requests)
}

/// Renders one job's terminal status as a result line. The `tenant` the
/// job was accounted to is echoed on every line.
pub fn status_to_json(name: &str, tenant: &str, status: &JobStatus) -> Json {
    match status {
        JobStatus::Done(out) => {
            let swap_ops: Vec<Json> = out
                .result
                .swaps
                .iter()
                .map(|s| Json::Array(vec![s.edge.into(), s.finish_time.into()]))
                .collect();
            object([
                ("name", name.into()),
                ("tenant", tenant.into()),
                ("status", "done".into()),
                ("optimal", out.proven_optimal.into()),
                ("degraded", out.degraded.into()),
                ("cache_hit", out.cache_hit.into()),
                ("wait_ms", (out.wait.as_millis() as u64).into()),
                ("service_ms", (out.service_time.as_millis() as u64).into()),
                ("depth", out.result.depth.into()),
                ("swaps", out.result.swap_count().into()),
                ("swap_duration", out.result.swap_duration.into()),
                (
                    "initial_mapping",
                    Json::Array(
                        out.result
                            .initial_mapping
                            .iter()
                            .map(|&p| (p as u64).into())
                            .collect(),
                    ),
                ),
                (
                    "schedule",
                    Json::Array(out.result.schedule.iter().map(|&t| t.into()).collect()),
                ),
                ("swap_ops", Json::Array(swap_ops)),
            ])
        }
        JobStatus::Failed(e) => object([
            ("name", name.into()),
            ("tenant", tenant.into()),
            ("status", "failed".into()),
            ("error", e.to_string().into()),
        ]),
        JobStatus::Cancelled => object([
            ("name", name.into()),
            ("tenant", tenant.into()),
            ("status", "cancelled".into()),
        ]),
        JobStatus::Queued | JobStatus::Running => object([
            ("name", name.into()),
            ("tenant", tenant.into()),
            ("status", "pending".into()),
        ]),
    }
}

/// Renders a metrics snapshot as the trailing summary line.
pub fn metrics_to_json(m: &ServiceMetrics) -> Json {
    object([(
        "metrics",
        object([
            (
                "jobs",
                object([
                    ("submitted", m.submitted.into()),
                    ("done", m.done.into()),
                    ("degraded", m.degraded.into()),
                    ("failed", m.failed.into()),
                    ("cancelled", m.cancelled.into()),
                ]),
            ),
            (
                "cache",
                object([
                    ("hits", m.cache.hits.into()),
                    ("misses", m.cache.misses.into()),
                    ("evictions", m.cache.evictions.into()),
                ]),
            ),
            (
                "latency_ms",
                object([
                    ("p50", (m.p50_latency.as_millis() as u64).into()),
                    ("p95", (m.p95_latency.as_millis() as u64).into()),
                    ("p99", (m.p99_latency.as_millis() as u64).into()),
                ]),
            ),
            (
                "solver",
                object([
                    ("conflicts", m.solver.conflicts.into()),
                    ("decisions", m.solver.decisions.into()),
                    ("propagations", m.solver.propagations.into()),
                    ("restarts", m.solver.restarts.into()),
                    ("learnts", m.solver.learnts.into()),
                    ("reduces", m.solver.reduces.into()),
                    ("minimized_lits", m.solver.minimized_lits.into()),
                    ("window_extensions", m.window_extensions.into()),
                ]),
            ),
            (
                "tenants",
                Json::Object(
                    m.tenants
                        .iter()
                        .map(|(tenant, t)| {
                            (
                                tenant.clone(),
                                object([
                                    ("submitted", t.submitted.into()),
                                    ("done", t.done.into()),
                                    ("failed", t.failed.into()),
                                    ("cancelled", t.cancelled.into()),
                                    ("p50_ms", (t.p50_latency.as_millis() as u64).into()),
                                    ("p95_ms", (t.p95_latency.as_millis() as u64).into()),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ]),
    )])
}

/// One finished batch job: its manifest name, tenant, and terminal status.
pub type BatchStatus = (String, String, JobStatus);

/// Drives a batch through a fresh service: submits every request (with
/// backpressure against the bounded queue), awaits them all, and returns
/// the per-job `(name, tenant, status)` triples in manifest order plus
/// the final metrics snapshot.
pub fn run_batch(
    requests: Vec<SynthesisRequest>,
    config: ServiceConfig,
) -> (Vec<BatchStatus>, ServiceMetrics) {
    let mut service = SynthesisService::start(config);
    let out = run_batch_on(&service, requests);
    service.shutdown();
    out
}

/// [`run_batch`] over a caller-owned service, which stays running
/// afterwards — the shape needed when an [`crate::IntrospectionServer`]
/// or a periodic Prometheus flusher holds a handle to the same service
/// while the batch drains.
pub fn run_batch_on(
    service: &SynthesisService,
    requests: Vec<SynthesisRequest>,
) -> (Vec<BatchStatus>, ServiceMetrics) {
    let mut handles = Vec::with_capacity(requests.len());
    let mut waited = 0usize; // prefix of `handles` already awaited for backpressure
    for request in requests {
        let name = request.name.clone();
        let tenant = request.tenant.clone();
        loop {
            match service.submit(request.clone()) {
                Ok(handle) => {
                    handles.push((name, tenant, handle));
                    break;
                }
                Err(SubmitError::QueueFull) => {
                    // Backpressure: wait for the oldest outstanding job to
                    // finish, freeing a queue slot, then retry.
                    if waited < handles.len() {
                        let _ = handles[waited].2.wait();
                        waited += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                Err(SubmitError::ShuttingDown) => {
                    unreachable!("service not shut down during batch")
                }
            }
        }
    }
    let statuses: Vec<BatchStatus> = handles
        .iter()
        .map(|(name, tenant, handle)| (name.clone(), tenant.clone(), handle.wait()))
        .collect();
    let metrics = service.metrics();
    (statuses, metrics)
}
