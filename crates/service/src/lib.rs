//! # olsq2-service
//!
//! Synthesis-as-a-service over the OLSQ2 core: a bounded job queue feeding
//! a fixed worker pool of plain `std` threads (no async runtime), a
//! canonicalizing result cache, per-job deadlines with graceful
//! degradation, and service-level metrics.
//!
//! The paper solves one instance at a time; a compilation service sees
//! *streams* of instances — many of them repeats of each other up to a
//! renaming of program qubits. This crate adds the serving layer:
//!
//! * [`SynthesisService`] — submit [`SynthesisRequest`]s, get
//!   [`JobHandle`]s that can be polled, awaited, or cancelled;
//! * [`ResultCache`] — keyed by a structural hash of the circuit *up to
//!   qubit relabeling*, the device coupling graph, and the
//!   result-relevant configuration, with LRU eviction;
//! * per-job deadlines enforced through the solver's cooperative budget
//!   machinery; on expiry the job returns the best-so-far incumbent
//!   (published by the optimization loops via [`olsq2::IncumbentSlot`])
//!   tagged non-optimal, instead of erroring;
//! * [`ServiceMetrics`] — queue/running/done counters, cache hit rates,
//!   latency percentiles, aggregated solver statistics;
//! * the JSONL manifest format of `olsq2 serve-batch` ([`manifest`]).
//!
//! ## Example
//!
//! ```
//! use olsq2_service::{Objective, ServiceConfig, SynthesisRequest, SynthesisService, JobStatus};
//! use olsq2_arch::line;
//! use olsq2_circuit::{Circuit, Gate, GateKind};
//!
//! let mut service = SynthesisService::start(ServiceConfig {
//!     workers: 2,
//!     ..ServiceConfig::default()
//! });
//!
//! let mut circuit = Circuit::new(3);
//! circuit.push(Gate::two(GateKind::Cx, 0, 1));
//! circuit.push(Gate::two(GateKind::Cx, 1, 2));
//! let mut request =
//!     SynthesisRequest::new("demo", circuit.clone(), line(3), Objective::Depth);
//! request.config.swap_duration = 1;
//!
//! // Submit the job twice: the second run is answered from the cache.
//! let first = service.submit(request.clone()).unwrap().wait();
//! let second = service.submit(request).unwrap().wait();
//! let (JobStatus::Done(a), JobStatus::Done(b)) = (first, second) else {
//!     panic!("both jobs complete")
//! };
//! assert!(!a.cache_hit);
//! assert!(b.cache_hit);
//! assert_eq!(a.result.depth, b.result.depth);
//! assert_eq!(service.metrics().cache.hits, 1);
//! service.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod http;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod request;
pub mod service;

pub use cache::{CacheKey, CacheStats, CachedResult, ResultCache};
pub use http::IntrospectionServer;
pub use metrics::{prometheus_text, ServiceMetrics, SolverTotals, TenantStats};
pub use request::{JobHandle, JobOutput, JobStatus, Objective, Priority, SynthesisRequest};
pub use service::{
    FlightSettings, IntrospectionHandle, ServiceConfig, SubmitError, SynthesisService,
};
