//! A minimal HTTP/1.1 introspection endpoint over `std::net` — no async
//! runtime, no HTTP library, one thread.
//!
//! The server exposes a running [`crate::SynthesisService`] through its
//! [`IntrospectionHandle`]:
//!
//! * `GET /healthz` — liveness: `200 ok`.
//! * `GET /metrics` — the Prometheus text exposition
//!   ([`crate::prometheus_text`]), sampled at scrape time; queue-depth
//!   (`olsq2_jobs_queued`) and worker-busy (`olsq2_workers_busy`) gauges
//!   therefore reflect the instant of the scrape, not job completion.
//! * `GET /flight/<job-id>` — the job's live search flight ring as
//!   versioned JSONL ([`olsq2::Probe::to_jsonl`]); `404` when the job is
//!   unknown or the service runs without [`crate::FlightSettings`].
//!
//! Scrapes are rare (seconds apart) and responses are small, so requests
//! are served inline on the accept thread; a stuck client is bounded by a
//! per-connection read timeout rather than by a thread pool.

use crate::service::IntrospectionHandle;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running introspection listener; see the module docs for the routes.
///
/// Dropping the server shuts it down and joins the accept thread.
pub struct IntrospectionServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for IntrospectionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntrospectionServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl IntrospectionServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9090"`; port `0` picks a free one)
    /// and starts serving the handle's service.
    ///
    /// # Errors
    ///
    /// Propagates the bind/spawn failure.
    pub fn start(addr: &str, handle: IntrospectionHandle) -> std::io::Result<IntrospectionServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let thread = std::thread::Builder::new()
            .name("olsq2-http".to_string())
            .spawn(move || accept_loop(&listener, &handle, &accept_stop))?;
        Ok(IntrospectionServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (with the actual port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        // The accept loop blocks in `incoming()`; poke it awake with a
        // throwaway connection so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for IntrospectionServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, handle: &IntrospectionHandle, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        // A failed accept or a misbehaving client must not take the
        // endpoint down; drop the connection and keep listening.
        if let Ok(stream) = conn {
            let _ = serve_connection(stream, handle);
        }
    }
}

fn serve_connection(stream: TcpStream, handle: &IntrospectionHandle) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers; none of them influence the routes served here.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    match path {
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4",
            &handle.prometheus_text(),
        ),
        _ => match path.strip_prefix("/flight/").map(str::parse::<u64>) {
            Some(Ok(job_id)) => match handle.flight_jsonl(job_id) {
                Some(body) => respond(&mut stream, 200, "application/x-ndjson", &body),
                None => respond(&mut stream, 404, "text/plain", "unknown job\n"),
            },
            _ => respond(&mut stream, 404, "text/plain", "not found\n"),
        },
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{FlightSettings, ServiceConfig, SynthesisService};
    use crate::{Objective, SynthesisRequest};
    use olsq2_arch::line;
    use olsq2_circuit::{Circuit, Gate, GateKind};
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    fn two_cx_circuit() -> Circuit {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 1, 2));
        circuit
    }

    #[test]
    fn loopback_smoke_healthz_metrics_flight() {
        let mut service = SynthesisService::start(ServiceConfig {
            workers: 1,
            flight: Some(FlightSettings {
                every: 1,
                ..FlightSettings::default()
            }),
            ..ServiceConfig::default()
        });
        let mut server =
            IntrospectionServer::start("127.0.0.1:0", service.introspection()).expect("bind");
        let addr = server.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        // Run one job so both the metrics and its flight ring have content.
        let mut request =
            SynthesisRequest::new("smoke", two_cx_circuit(), line(3), Objective::Depth)
                .with_tenant("team-a");
        request.config.swap_duration = 1;
        let handle = service.submit(request).expect("submit");
        let id = handle.id();
        handle.wait();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(metrics.contains("olsq2_jobs_submitted 1"), "{metrics}");
        assert!(metrics.contains("olsq2_jobs_queued"), "{metrics}");
        assert!(metrics.contains("olsq2_workers 1"), "{metrics}");
        assert!(metrics.contains("olsq2_workers_busy"), "{metrics}");
        assert!(
            metrics.contains("olsq2_tenant_jobs_done{tenant=\"team-a\"} 1"),
            "{metrics}"
        );

        // The job's flight ring is served even after completion; a tiny
        // instance may finish without a single conflict, but the dump
        // must still be well-formed (meta line at minimum).
        let flight = get(addr, &format!("/flight/{id}"));
        assert!(flight.starts_with("HTTP/1.1 200"), "{flight}");
        assert!(flight.contains("\"type\":\"flight_meta\""), "{flight}");

        let missing = get(addr, "/flight/999999");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let nonsense = get(addr, "/no-such-route");
        assert!(nonsense.starts_with("HTTP/1.1 404"), "{nonsense}");

        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn rejects_non_get_methods() {
        let service = SynthesisService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let server =
            IntrospectionServer::start("127.0.0.1:0", service.introspection()).expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: test\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }
}
