//! Request and job types of the synthesis service.

use olsq2::{CubeParams, SynthesisConfig, SynthesisError};
use olsq2_arch::CouplingGraph;
use olsq2_circuit::Circuit;
use olsq2_layout::LayoutResult;
use olsq2_sat::Stats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What the service should optimize for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Depth optimization (§III-B-1), exact time-resolved model.
    Depth,
    /// SWAP-count optimization (§III-B-2), exact model, Pareto descent.
    Swaps,
    /// SWAP-count optimization over the transition-based model (§III-D):
    /// near-optimal and much faster on deep circuits.
    TransitionSwaps,
}

impl Objective {
    /// The manifest/result wire name.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Depth => "depth",
            Objective::Swaps => "swaps",
            Objective::TransitionSwaps => "tb-swaps",
        }
    }

    /// Parses a manifest objective name.
    pub fn parse(name: &str) -> Option<Objective> {
        match name {
            "depth" => Some(Objective::Depth),
            "swaps" => Some(Objective::Swaps),
            "tb-swaps" | "tb" | "transition" => Some(Objective::TransitionSwaps),
            _ => None,
        }
    }
}

/// Scheduling priority of a job. Higher priorities are dequeued first;
/// within one priority jobs run in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Served before everything else.
    High,
    /// The default.
    #[default]
    Normal,
    /// Served only when nothing else waits.
    Low,
}

impl Priority {
    /// The manifest wire name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a manifest priority name.
    pub fn parse(name: &str) -> Option<Priority> {
        match name {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// One unit of work for the service: a circuit to lay out on a device.
#[derive(Debug, Clone)]
pub struct SynthesisRequest {
    /// A caller-chosen label, echoed in results and logs.
    pub name: String,
    /// The tenant (team, pipeline, customer) the job is accounted to.
    /// Per-tenant job counters and latency series appear in
    /// [`crate::ServiceMetrics::tenants`] and as `tenant="..."` labels in
    /// the Prometheus exposition. Defaults to `"default"`.
    pub tenant: String,
    /// The logical circuit.
    pub circuit: Circuit,
    /// The target device.
    pub device: CouplingGraph,
    /// Synthesis configuration (encoding, SWAP duration, …). The service
    /// overrides the budget/reporting hooks (`time_budget` is combined
    /// with [`SynthesisRequest::deadline`], `stop_flag` and `incumbent`
    /// are installed per job).
    pub config: SynthesisConfig,
    /// What to optimize.
    pub objective: Objective,
    /// Per-job wall-clock deadline, measured from the moment a worker
    /// picks the job up. On expiry the job degrades to the best incumbent
    /// found so far (tagged non-optimal) instead of failing, if any
    /// solution was reached.
    pub deadline: Option<Duration>,
    /// Queue priority.
    pub priority: Priority,
    /// Cube-and-conquer parameters. When set and the objective is
    /// [`Objective::Depth`], the job runs through
    /// [`olsq2::CubeSynthesizer`] — one big job splits into cubes and
    /// saturates the cube engine's internal worker cohort instead of
    /// occupying a single sequential solver. Ignored for the other
    /// objectives (they fall back to the sequential path).
    pub cube: Option<CubeParams>,
}

impl SynthesisRequest {
    /// A request with default configuration, normal priority, no deadline.
    pub fn new(
        name: impl Into<String>,
        circuit: Circuit,
        device: CouplingGraph,
        objective: Objective,
    ) -> SynthesisRequest {
        SynthesisRequest {
            name: name.into(),
            tenant: "default".to_string(),
            circuit,
            device,
            config: SynthesisConfig::default(),
            objective,
            deadline: None,
            priority: Priority::Normal,
            cube: None,
        }
    }

    /// Accounts the job to the given tenant (see
    /// [`SynthesisRequest::tenant`]).
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> SynthesisRequest {
        self.tenant = tenant.into();
        self
    }

    /// Routes the job through the cube-and-conquer engine (depth
    /// objective only; see [`SynthesisRequest::cube`]).
    #[must_use]
    pub fn with_cube(mut self, params: CubeParams) -> SynthesisRequest {
        self.cube = Some(params);
        self
    }
}

/// The completed payload of a successful (or degraded) job.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The synthesized layout, in the request's qubit naming.
    pub result: LayoutResult,
    /// Whether the result is proven optimal for its objective.
    pub proven_optimal: bool,
    /// `true` when the deadline cut the run short and this is the
    /// best-so-far incumbent rather than a completed optimization.
    pub degraded: bool,
    /// `true` when served from the canonicalizing cache.
    pub cache_hit: bool,
    /// Queue wait, from submission to a worker picking the job up.
    pub wait: Duration,
    /// Service time, from pickup to completion.
    pub service_time: Duration,
    /// Solver statistics (absent on cache hits).
    pub solver_stats: Option<Stats>,
}

/// Observable state of a job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished with a result (possibly degraded; see
    /// [`JobOutput::degraded`]). Boxed: the payload (layout + solver
    /// stats) dwarfs the other variants.
    Done(Box<JobOutput>),
    /// Synthesis failed.
    Failed(SynthesisError),
    /// Cancelled before completion.
    Cancelled,
}

impl JobStatus {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Done(_) | JobStatus::Failed(_) | JobStatus::Cancelled
        )
    }
}

pub(crate) struct JobShared {
    pub(crate) status: Mutex<JobStatus>,
    pub(crate) done: Condvar,
    /// Raised by [`JobHandle::cancel`] and by service shutdown; doubles as
    /// the solver's cooperative stop flag while the job runs.
    pub(crate) cancel: Arc<AtomicBool>,
}

impl JobShared {
    pub(crate) fn new() -> Arc<JobShared> {
        Arc::new(JobShared {
            status: Mutex::new(JobStatus::Queued),
            done: Condvar::new(),
            cancel: Arc::new(AtomicBool::new(false)),
        })
    }

    pub(crate) fn set_status(&self, status: JobStatus) {
        let mut guard = self.status.lock().expect("job status lock");
        *guard = status;
        self.done.notify_all();
    }
}

/// A handle to a submitted job: poll, await, or cancel it.
///
/// Dropping the handle does not cancel the job.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) name: String,
    pub(crate) shared: Arc<JobShared>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

impl JobHandle {
    /// The service-assigned job id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The request's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The job's current status, without blocking.
    pub fn poll(&self) -> JobStatus {
        self.shared.status.lock().expect("job status lock").clone()
    }

    /// Blocks until the job reaches a terminal status and returns it.
    pub fn wait(&self) -> JobStatus {
        let mut guard = self.shared.status.lock().expect("job status lock");
        while !guard.is_terminal() {
            guard = self.shared.done.wait(guard).expect("job status lock");
        }
        guard.clone()
    }

    /// Requests cancellation. A queued job is dropped before it runs; a
    /// running job aborts at the solver's next check point, surfacing as
    /// [`JobStatus::Cancelled`] (or as a degraded [`JobStatus::Done`] if
    /// an incumbent was already found).
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
    }
}
