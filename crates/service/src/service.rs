//! The synthesis service: a bounded priority queue feeding a fixed pool
//! of worker threads, with per-job deadlines, cooperative cancellation,
//! a canonicalizing result cache, and metrics.
//!
//! No async runtime is involved: workers are plain `std::thread`s, the
//! queue is a mutex-protected ordered map, and job completion is signalled
//! through a condvar on each job's shared state. This matches the
//! synchronous, CPU-bound nature of SAT solving — a solver thread cannot
//! yield anyway, so threads *are* the unit of concurrency.

use crate::cache::{self, CacheStats, CachedResult, ResultCache};
use crate::metrics::{MetricsCollector, ServiceMetrics};
use crate::request::{
    JobHandle, JobOutput, JobShared, JobStatus, Objective, Priority, SynthesisRequest,
};
use olsq2::{
    CubeSynthesizer, IncumbentSlot, ModelSeed, Olsq2Synthesizer, SnapshotSlot, SynthesisError,
    TbOlsq2Synthesizer,
};
use olsq2_layout::LayoutResult;
use olsq2_sat::Stats;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Sizing knobs for a [`SynthesisService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of worker threads (minimum 1).
    pub workers: usize,
    /// Maximum number of jobs waiting in the queue; submissions beyond
    /// this are rejected with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Telemetry sink shared by every job the service runs: each job gets
    /// one span (tagged with its id, objective, and queue wait) and, unless
    /// the request carries its own recorder, has this one injected into its
    /// [`olsq2::SynthesisConfig`] so synthesizer iteration spans nest under
    /// the job span. The default disabled recorder records nothing.
    pub recorder: olsq2::Recorder,
    /// Whether jobs may extend encoding windows in place
    /// ([`olsq2::SynthesisConfig::incremental`]). `false` forces every job
    /// onto the rebuild-from-scratch path regardless of its own config.
    pub incremental: bool,
    /// When set, every job gets its own search flight recorder
    /// ([`olsq2::Probe`]): live rings are served over
    /// [`IntrospectionHandle::flight_jsonl`] (and the HTTP
    /// `/flight/<job-id>` route), and jobs that end degraded, cancelled,
    /// or failed dump their ring to [`FlightSettings::dir`].
    pub flight: Option<FlightSettings>,
    /// Opt-in warm restarts for preempted jobs. When `true`, a job cut
    /// short by its deadline or conflict budget publishes an O(memcpy)
    /// snapshot of its solver ([`olsq2::ModelSeed`], captured at the last
    /// root settle) into a per-service store keyed by the *exact*
    /// instance fingerprint — deliberately not the relabeling-invariant
    /// cache key, since a fork replays the template's variable numbering
    /// verbatim. A resubmission of the same instance forks the snapshot
    /// instead of re-encoding, resuming with all learned clauses and
    /// phase/activity state intact. Default `false`.
    pub snapshot_on_preempt: bool,
}

/// Per-job flight-recorder sizing for a service (see
/// [`ServiceConfig::flight`]).
#[derive(Debug, Clone)]
pub struct FlightSettings {
    /// Ring capacity in samples per job.
    pub capacity: usize,
    /// Sampling cadence in conflicts.
    pub every: u64,
    /// Directory for post-mortem dumps (`job-<id>.flight.jsonl`). Jobs
    /// that finish degraded (deadline), cancelled, or failed dump their
    /// ring here; `None` keeps rings in memory only.
    pub dir: Option<std::path::PathBuf>,
}

impl Default for FlightSettings {
    fn default() -> Self {
        FlightSettings {
            capacity: 1024,
            every: 128,
            dir: None,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2);
        ServiceConfig {
            workers,
            queue_capacity: 256,
            cache_capacity: 512,
            recorder: olsq2::Recorder::disabled(),
            incremental: true,
            flight: None,
            snapshot_on_preempt: false,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after jobs drain.
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct QueuedJob {
    request: SynthesisRequest,
    shared: Arc<JobShared>,
    submitted_at: Instant,
}

#[derive(Default)]
struct QueueState {
    /// Keyed by `(priority, sequence)`: the first entry is the next job.
    jobs: BTreeMap<(Priority, u64), QueuedJob>,
}

struct ServiceState {
    queue: Mutex<QueueState>,
    available: Condvar,
    metrics: MetricsCollector,
    cache: Option<Mutex<ResultCache>>,
    shutdown: AtomicBool,
    /// Cancel flags of currently running jobs, so shutdown can interrupt
    /// in-flight solves.
    running_flags: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    recorder: olsq2::Recorder,
    incremental: bool,
    flight: Option<FlightSettings>,
    /// Per-job flight rings, keyed by job id; populated only when
    /// [`ServiceConfig::flight`] is set. Rings stay readable after their
    /// job completes (the service instance bounds their lifetime).
    flights: Mutex<HashMap<u64, olsq2::Probe>>,
    snapshot_on_preempt: bool,
    /// Solver snapshots of preempted jobs, keyed by the exact instance
    /// fingerprint ([`ModelSeed::instance_fingerprint`]), bounded by
    /// [`SNAPSHOT_CAPACITY`]. A resubmitted instance forks its entry
    /// instead of re-encoding; a proven-optimal completion retires it.
    snapshots: Mutex<HashMap<u64, ModelSeed>>,
}

/// Entry cap of the preemption-snapshot store; an arbitrary entry is
/// evicted when a new instance arrives at capacity.
const SNAPSHOT_CAPACITY: usize = 32;

/// A synthesis service instance owning its worker pool.
///
/// See the crate docs for an end-to-end example. Dropping the service
/// shuts it down: queued jobs are cancelled, running jobs are interrupted
/// through the solver's stop flag, and all workers are joined.
pub struct SynthesisService {
    state: Arc<ServiceState>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
    queue_capacity: usize,
}

impl std::fmt::Debug for SynthesisService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthesisService")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.queue_capacity)
            .finish()
    }
}

impl SynthesisService {
    /// Starts a service with the given sizing.
    pub fn start(config: ServiceConfig) -> SynthesisService {
        let state = Arc::new(ServiceState {
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            metrics: MetricsCollector::new(),
            cache: if config.cache_capacity > 0 {
                Some(Mutex::new(ResultCache::new(config.cache_capacity)))
            } else {
                None
            },
            shutdown: AtomicBool::new(false),
            running_flags: Mutex::new(HashMap::new()),
            recorder: config.recorder,
            incremental: config.incremental,
            flight: config.flight,
            flights: Mutex::new(HashMap::new()),
            snapshot_on_preempt: config.snapshot_on_preempt,
            snapshots: Mutex::new(HashMap::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("olsq2-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker thread")
            })
            .collect();
        SynthesisService {
            state,
            workers,
            next_id: AtomicU64::new(0),
            queue_capacity: config.queue_capacity.max(1),
        }
    }

    /// Starts a service with default sizing.
    pub fn start_default() -> SynthesisService {
        SynthesisService::start(ServiceConfig::default())
    }

    /// Submits a request; returns a handle to poll, await, or cancel it.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after [`SynthesisService::shutdown`].
    pub fn submit(&self, request: SynthesisRequest) -> Result<JobHandle, SubmitError> {
        if self.state.shutdown.load(Ordering::Relaxed) {
            return Err(SubmitError::ShuttingDown);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let tenant = request.tenant.clone();
        let shared = JobShared::new();
        let handle = JobHandle {
            id,
            name: request.name.clone(),
            shared: shared.clone(),
        };
        {
            let mut queue = self.state.queue.lock().expect("queue lock");
            if queue.jobs.len() >= self.queue_capacity {
                return Err(SubmitError::QueueFull);
            }
            queue.jobs.insert(
                (request.priority, id),
                QueuedJob {
                    request,
                    shared,
                    submitted_at: Instant::now(),
                },
            );
        }
        self.state.metrics.on_submit(&tenant);
        self.state.available.notify_one();
        Ok(handle)
    }

    /// A metrics snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        let mut m = snapshot_metrics(&self.state);
        m.workers = self.workers.len() as u64;
        m
    }

    /// A cheaply cloneable handle for out-of-band introspection (the HTTP
    /// listener, periodic Prometheus flushers): it reads metrics and
    /// per-job flight rings without borrowing the service, so it can live
    /// on other threads while jobs run.
    pub fn introspection(&self) -> IntrospectionHandle {
        IntrospectionHandle {
            state: self.state.clone(),
            workers: self.workers.len() as u64,
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The service's shared telemetry recorder (the one passed in through
    /// [`ServiceConfig::recorder`]); disabled unless the caller enabled it.
    pub fn recorder(&self) -> &olsq2::Recorder {
        &self.state.recorder
    }

    /// The current metrics snapshot plus recorder counters in Prometheus
    /// text exposition format. See [`crate::metrics::prometheus_text`].
    pub fn prometheus_text(&self) -> String {
        crate::metrics::prometheus_text(&self.metrics(), &self.state.recorder)
    }

    /// Stops the service: rejects new submissions, cancels queued jobs,
    /// interrupts running jobs through the solver stop flag, and joins the
    /// workers. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.state.shutdown.swap(true, Ordering::Relaxed) {
            return;
        }
        {
            let mut queue = self.state.queue.lock().expect("queue lock");
            for (_, job) in std::mem::take(&mut queue.jobs) {
                self.state.metrics.on_cancel_queued(&job.request.tenant);
                job.shared.set_status(JobStatus::Cancelled);
            }
        }
        for flag in self
            .state
            .running_flags
            .lock()
            .expect("running flags lock")
            .values()
        {
            flag.store(true, Ordering::Relaxed);
        }
        self.state.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for SynthesisService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads service metrics and per-job flight rings without borrowing the
/// service; see [`SynthesisService::introspection`].
#[derive(Clone)]
pub struct IntrospectionHandle {
    state: Arc<ServiceState>,
    workers: u64,
}

impl std::fmt::Debug for IntrospectionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntrospectionHandle")
            .field("workers", &self.workers)
            .finish()
    }
}

impl IntrospectionHandle {
    /// A metrics snapshot, sampled at call time.
    pub fn metrics(&self) -> ServiceMetrics {
        let mut m = snapshot_metrics(&self.state);
        m.workers = self.workers;
        m
    }

    /// The metrics snapshot plus recorder counters/histograms in
    /// Prometheus text exposition format, sampled at call time.
    pub fn prometheus_text(&self) -> String {
        crate::metrics::prometheus_text(&self.metrics(), &self.state.recorder)
    }

    /// The flight ring of the given job as versioned JSONL; `None` when
    /// the job is unknown or the service runs without
    /// [`ServiceConfig::flight`].
    pub fn flight_jsonl(&self, job_id: u64) -> Option<String> {
        let probe = self
            .state
            .flights
            .lock()
            .expect("flights lock")
            .get(&job_id)
            .cloned()?;
        Some(probe.to_jsonl())
    }
}

fn snapshot_metrics(state: &ServiceState) -> ServiceMetrics {
    let cache_stats = match &state.cache {
        Some(cache) => cache.lock().expect("cache lock").stats(),
        None => CacheStats::default(),
    };
    state.metrics.snapshot(cache_stats)
}

fn worker_loop(state: &ServiceState) {
    loop {
        let (id, job) = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if state.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some((&key, _)) = queue.jobs.iter().next() {
                    let job = queue.jobs.remove(&key).expect("present");
                    break (key.1, job);
                }
                queue = state.available.wait(queue).expect("queue lock");
            }
        };
        if job.shared.cancel.load(Ordering::Relaxed) {
            // Metrics before status: `wait()` returns the moment the
            // status turns terminal, and callers may read metrics then.
            state.metrics.on_cancel_queued(&job.request.tenant);
            job.shared.set_status(JobStatus::Cancelled);
            continue;
        }
        state.metrics.on_dequeue();
        state
            .running_flags
            .lock()
            .expect("running flags lock")
            .insert(id, job.shared.cancel.clone());
        run_job(state, id, &job);
        state
            .running_flags
            .lock()
            .expect("running flags lock")
            .remove(&id);
    }
}

fn run_job(state: &ServiceState, id: u64, job: &QueuedJob) {
    let picked_at = Instant::now();
    let wait = picked_at - job.submitted_at;
    job.shared.set_status(JobStatus::Running);
    let request = &job.request;
    let tenant = request.tenant.as_str();

    // Arm the job's flight recorder before any solver exists, so the ring
    // is registered (and scrapeable over `/flight/<job-id>`) for the
    // job's whole run.
    let flight_probe = state.flight.as_ref().map(|settings| {
        let probe = olsq2::Probe::new(settings.capacity, settings.every);
        state
            .flights
            .lock()
            .expect("flights lock")
            .insert(id, probe.clone());
        probe
    });
    // Post-mortem dump for jobs that did not complete cleanly: deadline
    // degradation, cancellation, and failure all leave the ring's last
    // window on disk when a dump directory is configured.
    let dump_flight = |why: &str| {
        let (Some(probe), Some(settings)) = (&flight_probe, &state.flight) else {
            return;
        };
        let Some(dir) = &settings.dir else { return };
        let path = dir.join(format!("job-{id}.flight.jsonl"));
        if let Err(e) = probe.write_jsonl(&path) {
            eprintln!("cannot write flight dump for {why} job {id}: {e}");
        }
    };

    // One span per job; synthesizer spans opened on this worker thread
    // nest under it automatically.
    let span = state.recorder.span("job");
    span.set("job_id", id);
    span.set("name", request.name.as_str());
    span.set("objective", request.objective.name());
    span.set("priority", request.priority.name());
    span.set("queue_wait_us", wait.as_micros() as u64);

    // Cache lookup under the canonical key.
    let canonical = state.cache.as_ref().map(|_| {
        cache::canonicalize(
            &request.circuit,
            &request.device,
            &request.config,
            request.objective,
        )
    });
    if let (Some(cache_mutex), Some(canonical)) = (&state.cache, &canonical) {
        let hit = cache_mutex.lock().expect("cache lock").get(&canonical.key);
        if let Some(entry) = hit {
            let result = cache::translate_hit(&entry.result, &canonical.relabel);
            let output = JobOutput {
                result,
                proven_optimal: entry.proven_optimal,
                degraded: false,
                cache_hit: true,
                wait,
                service_time: picked_at.elapsed(),
                solver_stats: None,
            };
            state
                .metrics
                .on_done(job.submitted_at.elapsed(), false, None, tenant);
            span.set("cache_hit", true);
            span.set("status", "done");
            // Close the span before the status turns terminal: `wait()`
            // returns the instant it does, and the caller may snapshot
            // the recorder right away.
            drop(span);
            job.shared.set_status(JobStatus::Done(Box::new(output)));
            return;
        }
    }

    // Arm the per-job budget and reporting hooks.
    let mut config = request.config.clone();
    config.incremental = config.incremental && state.incremental;
    config.stop_flag = Some(job.shared.cancel.clone());
    if !config.recorder.is_enabled() {
        config.recorder = state.recorder.clone();
    }
    let incumbent = IncumbentSlot::new();
    config.incumbent = Some(incumbent.clone());
    if let Some(probe) = &flight_probe {
        config.probe = probe.clone();
    }
    config.time_budget = match (config.time_budget, request.deadline) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };

    // Snapshot-on-preempt: resume this instance from a prior preempted
    // run's solver fork if one is stored, and arm a slot so this run can
    // publish its own snapshot if it too gets cut short. Keyed by the
    // exact instance fingerprint, not the relabeling-invariant cache key
    // — forks replay the template's variable numbering verbatim.
    let snapshot_key = (state.snapshot_on_preempt && config.fork_spawn)
        .then(|| ModelSeed::instance_fingerprint(&request.circuit, &request.device, &config));
    let snapshot_slot = snapshot_key.map(|key| {
        let stored = state
            .snapshots
            .lock()
            .expect("snapshots lock")
            .get(&key)
            .cloned();
        if let Some(seed) = stored {
            span.set("snapshot_resume", true);
            config.model_seed = Some(seed);
        }
        let slot = SnapshotSlot::new();
        config.snapshot_slot = Some(slot.clone());
        slot
    });
    let stash_snapshot = |retire: bool| {
        let (Some(slot), Some(key)) = (&snapshot_slot, snapshot_key) else {
            return;
        };
        let mut store = state.snapshots.lock().expect("snapshots lock");
        if retire {
            store.remove(&key);
            return;
        }
        if let Some(seed) = slot.take() {
            if store.len() >= SNAPSHOT_CAPACITY && !store.contains_key(&key) {
                if let Some(evict) = store.keys().next().copied() {
                    store.remove(&evict);
                }
            }
            store.insert(key, seed);
        }
    };

    let solved = solve(request, config);
    let latency = job.submitted_at.elapsed();
    let service_time = picked_at.elapsed();

    match solved {
        Ok((result, proven_optimal, stats, extensions)) => {
            // A proven-optimal completion retires the instance's stored
            // snapshot; a degraded one publishes the fresher state the
            // budget hooks captured at the last root settle.
            stash_snapshot(proven_optimal);
            state.metrics.on_extensions(extensions as u64);
            // `proven_optimal == false` on an Ok outcome means the budget
            // machinery (deadline, conflict budget, or cancel) cut the
            // optimization short and the loop kept its best-so-far — the
            // graceful-degradation contract.
            let degraded = !proven_optimal;
            if proven_optimal {
                if let (Some(cache_mutex), Some(canonical)) = (&state.cache, &canonical) {
                    // Store in canonical qubit space: canonical qubit
                    // `relabel[q]` sits where request qubit `q` was mapped.
                    let mut canon_mapping = vec![0u16; result.initial_mapping.len()];
                    for (q, &c) in canonical.relabel.iter().enumerate() {
                        canon_mapping[c as usize] = result.initial_mapping[q];
                    }
                    let mut canon_result = result.clone();
                    canon_result.initial_mapping = canon_mapping;
                    cache_mutex.lock().expect("cache lock").insert(
                        canonical.key.clone(),
                        CachedResult {
                            result: canon_result,
                            proven_optimal,
                        },
                    );
                }
            }
            let output = JobOutput {
                result,
                proven_optimal,
                degraded,
                cache_hit: false,
                wait,
                service_time,
                solver_stats: Some(stats),
            };
            state
                .metrics
                .on_done(latency, degraded, output.solver_stats.as_ref(), tenant);
            span.set("status", "done");
            span.set("degraded", degraded);
            drop(span);
            if degraded {
                dump_flight("degraded");
            }
            job.shared.set_status(JobStatus::Done(Box::new(output)));
        }
        Err(SynthesisError::BudgetExhausted) => {
            stash_snapshot(false);
            if job.shared.cancel.load(Ordering::Relaxed) {
                state.metrics.on_cancel_running(tenant);
                span.set("status", "cancelled");
                drop(span);
                dump_flight("cancelled");
                job.shared.set_status(JobStatus::Cancelled);
            } else if let Some(best) = incumbent.take() {
                // Deadline degradation: return the best-so-far incumbent,
                // tagged non-optimal, instead of an error. Not cached —
                // a degraded answer depends on the deadline, not only on
                // the instance.
                let output = JobOutput {
                    result: best,
                    proven_optimal: false,
                    degraded: true,
                    cache_hit: false,
                    wait,
                    service_time,
                    solver_stats: None,
                };
                state.metrics.on_done(latency, true, None, tenant);
                span.set("status", "done");
                span.set("degraded", true);
                drop(span);
                dump_flight("degraded");
                job.shared.set_status(JobStatus::Done(Box::new(output)));
            } else {
                state.metrics.on_failed(latency, tenant);
                span.set("status", "failed");
                drop(span);
                dump_flight("failed");
                job.shared
                    .set_status(JobStatus::Failed(SynthesisError::BudgetExhausted));
            }
        }
        Err(e) => {
            state.metrics.on_failed(latency, tenant);
            span.set("status", "failed");
            drop(span);
            dump_flight("failed");
            job.shared.set_status(JobStatus::Failed(e));
        }
    }
}

fn solve(
    request: &SynthesisRequest,
    config: olsq2::SynthesisConfig,
) -> Result<(LayoutResult, bool, Stats, usize), SynthesisError> {
    match request.objective {
        // Cube-and-conquer only accelerates the depth objective; a cube
        // request with another objective falls through to the sequential
        // path below.
        Objective::Depth if request.cube.is_some() => {
            let params = request.cube.clone().expect("checked by guard");
            let out = CubeSynthesizer::new(config, params)
                .optimize_depth(&request.circuit, &request.device)?
                .outcome;
            Ok((
                out.result,
                out.proven_optimal,
                out.solver_stats,
                out.extensions,
            ))
        }
        Objective::Depth => {
            let out =
                Olsq2Synthesizer::new(config).optimize_depth(&request.circuit, &request.device)?;
            Ok((
                out.result,
                out.proven_optimal,
                out.solver_stats,
                out.extensions,
            ))
        }
        Objective::Swaps => {
            let out =
                Olsq2Synthesizer::new(config).optimize_swaps(&request.circuit, &request.device)?;
            Ok((
                out.best.result,
                out.best.proven_optimal,
                out.best.solver_stats,
                out.best.extensions,
            ))
        }
        Objective::TransitionSwaps => {
            let out = TbOlsq2Synthesizer::new(config)
                .optimize_swaps(&request.circuit, &request.device)?;
            Ok((
                out.outcome.result,
                out.outcome.proven_optimal,
                out.outcome.solver_stats,
                out.outcome.extensions,
            ))
        }
    }
}
