//! The canonicalizing result cache.
//!
//! Production synthesis workloads repeat themselves: the same arithmetic
//! blocks, the same QAOA layers, the same benchmark circuits re-submitted
//! under fresh qubit namings. Layout synthesis is invariant under a
//! relabeling of *program* qubits — if `σ` permutes program qubits, a
//! solution for `σ(C)` is a solution for `C` with the initial mapping
//! composed with `σ` (schedules are per-gate and SWAPs live in physical
//! space, so both carry over unchanged). The cache exploits this: requests
//! are keyed by a canonical form of the circuit (qubits relabeled by first
//! appearance in the gate list) together with the device edge list and the
//! result-relevant configuration, so any two requests that differ only by
//! a qubit relabeling share one cache entry.
//!
//! Only *deterministic* results are cached: entries must be proven optimal
//! and not deadline-degraded, so a hit is exactly what a fresh solve would
//! return.

use crate::request::Objective;
use olsq2::SynthesisConfig;
use olsq2_arch::CouplingGraph;
use olsq2_circuit::{Circuit, Operands};
use olsq2_layout::LayoutResult;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

/// The canonical form of a request: a relabeling of the circuit plus the
/// exact cache key it produces.
#[derive(Debug, Clone)]
pub struct CanonicalRequest {
    /// `relabel[q]` is the canonical label of program qubit `q`.
    pub relabel: Vec<u16>,
    /// The full structural key (canonical circuit, device, config).
    pub key: CacheKey,
}

/// A structural cache key. Two requests produce equal keys iff their
/// circuits are identical up to program-qubit relabeling *and* they target
/// the same device with a result-equivalent configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    words: Vec<u64>,
}

impl CacheKey {
    /// The structural hash of this key (stable within a process run).
    pub fn structural_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.words.hash(&mut h);
        h.finish()
    }
}

/// Relabels program qubits by first appearance in the gate list; qubits
/// never touched by a gate keep their relative order after all touched
/// ones. This is a complete invariant for the gate-list structure: two
/// circuits get the same canonical gate list iff one is a qubit
/// relabeling of the other (gate order is preserved, so this is
/// relabeling-invariance, not graph isomorphism).
pub fn canonical_relabeling(circuit: &Circuit) -> Vec<u16> {
    let n = circuit.num_qubits();
    let mut relabel: Vec<Option<u16>> = vec![None; n];
    let mut next: u16 = 0;
    for gate in circuit.gates() {
        for q in gate.operands.qubits() {
            if relabel[q as usize].is_none() {
                relabel[q as usize] = Some(next);
                next += 1;
            }
        }
    }
    for slot in relabel.iter_mut() {
        if slot.is_none() {
            *slot = Some(next);
            next += 1;
        }
    }
    relabel.into_iter().map(|s| s.expect("assigned")).collect()
}

fn push_config(words: &mut Vec<u64>, config: &SynthesisConfig, objective: Objective) {
    // Only fields that influence the *final result* of a deterministic run
    // participate; budgets and reporting hooks do not (cached entries are
    // proven-optimal, see the module docs).
    let mut h = DefaultHasher::new();
    config.encoding.hash(&mut h);
    words.push(h.finish());
    words.push(config.swap_duration as u64);
    words.push(config.tub_factor.to_bits());
    words.push(match config.pareto_relax_limit {
        None => u64::MAX,
        Some(k) => k as u64,
    });
    words.push((config.seed_variable_order as u64) | ((config.commutation_aware as u64) << 1));
    words.push(match objective {
        Objective::Depth => 0,
        Objective::Swaps => 1,
        Objective::TransitionSwaps => 2,
    });
}

/// Computes the canonical form of a request.
pub fn canonicalize(
    circuit: &Circuit,
    device: &CouplingGraph,
    config: &SynthesisConfig,
    objective: Objective,
) -> CanonicalRequest {
    let relabel = canonical_relabeling(circuit);
    let mut words: Vec<u64> = Vec::with_capacity(circuit.num_gates() * 2 + 16);
    words.push(circuit.num_qubits() as u64);
    for gate in circuit.gates() {
        let mut h = DefaultHasher::new();
        gate.kind.name().hash(&mut h);
        for p in gate.kind.params() {
            p.to_bits().hash(&mut h);
        }
        words.push(h.finish());
        words.push(match gate.operands {
            Operands::One(q) => relabel[q as usize] as u64 | (1 << 32),
            Operands::Two(a, b) => {
                (relabel[a as usize] as u64) | ((relabel[b as usize] as u64) << 16) | (2 << 32)
            }
        });
    }
    // Device: qubit count plus the normalized edge list.
    words.push(device.num_qubits() as u64);
    for &(a, b) in device.edges() {
        words.push((a as u64) << 16 | b as u64);
    }
    push_config(&mut words, config, objective);
    CanonicalRequest {
        relabel,
        key: CacheKey { words },
    }
}

/// Translates a cached result (stored in canonical qubit space) back into
/// the request's qubit naming.
///
/// The canonical circuit is `circuit.permute_qubits(relabel)` — same gate
/// order, so the per-gate schedule aligns index-for-index; SWAPs are in
/// physical space and carry over; only the initial mapping needs
/// re-indexing: request qubit `q` is canonical qubit `relabel[q]`.
pub fn translate_hit(canonical: &LayoutResult, relabel: &[u16]) -> LayoutResult {
    let mut result = canonical.clone();
    result.initial_mapping = relabel
        .iter()
        .map(|&c| canonical.initial_mapping[c as usize])
        .collect();
    result
}

/// Hit/miss counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// An entry as stored in the cache: the result in canonical qubit space
/// plus the solve metadata worth replaying.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Layout in canonical qubit space.
    pub result: LayoutResult,
    /// Whether optimality was proven (always true for stored entries).
    pub proven_optimal: bool,
}

struct Entry {
    value: CachedResult,
    stamp: u64,
}

/// A bounded LRU cache of synthesis results keyed by [`CacheKey`].
///
/// Not internally synchronized — the service wraps it in a mutex. Lookups
/// refresh recency; inserts evict the least-recently-used entry once the
/// capacity is reached.
pub struct ResultCache {
    capacity: usize,
    map: HashMap<CacheKey, Entry>,
    // stamp → key, for O(log n) LRU eviction. Stamps are unique (monotone
    // counter), so this is a faithful recency order.
    recency: BTreeMap<u64, CacheKey>,
    clock: u64,
    stats: CacheStats,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("len", &self.map.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            recency: BTreeMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn touch(
        entry: &mut Entry,
        recency: &mut BTreeMap<u64, CacheKey>,
        clock: &mut u64,
        key: &CacheKey,
    ) {
        recency.remove(&entry.stamp);
        *clock += 1;
        entry.stamp = *clock;
        recency.insert(*clock, key.clone());
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedResult> {
        match self.map.get_mut(key) {
            Some(entry) => {
                Self::touch(entry, &mut self.recency, &mut self.clock, key);
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) an entry, evicting the least recently used
    /// one if at capacity.
    pub fn insert(&mut self, key: CacheKey, value: CachedResult) {
        if let Some(entry) = self.map.get_mut(&key) {
            Self::touch(entry, &mut self.recency, &mut self.clock, &key);
            entry.value = value;
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.recency.iter().next() {
                let victim = self.recency.remove(&oldest).expect("present");
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.clock += 1;
        self.recency.insert(self.clock, key.clone());
        self.map.insert(
            key,
            Entry {
                value,
                stamp: self.clock,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_circuit::{Gate, GateKind};

    fn cx_chain(pairs: &[(u16, u16)], n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for &(a, b) in pairs {
            c.push(Gate::two(GateKind::Cx, a, b));
        }
        c
    }

    fn dummy_result(mapping: Vec<u16>) -> CachedResult {
        CachedResult {
            result: LayoutResult {
                initial_mapping: mapping,
                schedule: vec![0],
                swaps: vec![],
                depth: 1,
                swap_duration: 1,
            },
            proven_optimal: true,
        }
    }

    #[test]
    fn relabeled_circuits_share_a_key() {
        let device = olsq2_arch::line(3);
        let config = SynthesisConfig::with_swap_duration(1);
        let a = cx_chain(&[(0, 1), (1, 2)], 3);
        // The same structure under the relabeling 0→2, 1→0, 2→1.
        let b = cx_chain(&[(2, 0), (0, 1)], 3);
        let ca = canonicalize(&a, &device, &config, Objective::Depth);
        let cb = canonicalize(&b, &device, &config, Objective::Depth);
        assert_eq!(ca.key, cb.key);
        assert_eq!(ca.key.structural_hash(), cb.key.structural_hash());
        // But a structurally different circuit does not collide.
        let c = cx_chain(&[(0, 1), (0, 2)], 3);
        let cc = canonicalize(&c, &device, &config, Objective::Depth);
        assert_ne!(ca.key, cc.key);
    }

    #[test]
    fn gate_params_distinguish_keys() {
        let device = olsq2_arch::line(2);
        let config = SynthesisConfig::with_swap_duration(1);
        let mut a = Circuit::new(2);
        a.push(Gate::one(GateKind::Rz(0.5), 0));
        a.push(Gate::two(GateKind::Cx, 0, 1));
        let mut b = Circuit::new(2);
        b.push(Gate::one(GateKind::Rz(0.25), 0));
        b.push(Gate::two(GateKind::Cx, 0, 1));
        let ka = canonicalize(&a, &device, &config, Objective::Depth).key;
        let kb = canonicalize(&b, &device, &config, Objective::Depth).key;
        assert_ne!(ka, kb);
    }

    #[test]
    fn differing_configs_bypass_each_other() {
        let device = olsq2_arch::line(3);
        let circuit = cx_chain(&[(0, 1), (1, 2)], 3);
        let c1 = SynthesisConfig::with_swap_duration(1);
        let mut c3 = SynthesisConfig::with_swap_duration(3);
        let k1 = canonicalize(&circuit, &device, &c1, Objective::Depth).key;
        let k3 = canonicalize(&circuit, &device, &c3, Objective::Depth).key;
        assert_ne!(k1, k3, "swap duration is result-relevant");
        c3.swap_duration = 1;
        c3.commutation_aware = true;
        let kc = canonicalize(&circuit, &device, &c3, Objective::Depth).key;
        assert_ne!(k1, kc, "commutation-awareness is result-relevant");
        let kd = canonicalize(&circuit, &device, &c1, Objective::Swaps).key;
        assert_ne!(k1, kd, "objective is part of the key");
        // Budget-only differences do NOT split the key.
        let mut budgeted = c1.clone();
        budgeted.time_budget = Some(std::time::Duration::from_secs(5));
        budgeted.conflict_budget = Some(1_000_000);
        let kb = canonicalize(&circuit, &device, &budgeted, Objective::Depth).key;
        assert_eq!(k1, kb, "budgets must not fragment the cache");
    }

    #[test]
    fn differing_devices_bypass_each_other() {
        let circuit = cx_chain(&[(0, 1), (1, 2)], 3);
        let config = SynthesisConfig::with_swap_duration(1);
        let ka = canonicalize(&circuit, &olsq2_arch::line(3), &config, Objective::Depth).key;
        let kb = canonicalize(&circuit, &olsq2_arch::line(4), &config, Objective::Depth).key;
        assert_ne!(ka, kb);
    }

    #[test]
    fn hit_translation_composes_the_relabeling() {
        let device = olsq2_arch::line(3);
        let config = SynthesisConfig::with_swap_duration(1);
        // Canonical form of `b` relabels 2→0, 0→1, 1→2 (first appearance).
        let b = cx_chain(&[(2, 0), (0, 1)], 3);
        let cb = canonicalize(&b, &device, &config, Objective::Depth);
        assert_eq!(cb.relabel, vec![1, 2, 0]);
        // Suppose the canonical solve mapped canonical qubit c → physical
        // `canon_mapping[c]`.
        let canon = dummy_result(vec![10, 11, 12]).result;
        let translated = translate_hit(&canon, &cb.relabel);
        // Request qubit 0 is canonical qubit 1 → physical 11, etc.
        assert_eq!(translated.initial_mapping, vec![11, 12, 10]);
        assert_eq!(translated.schedule, canon.schedule);
        assert_eq!(translated.swaps, canon.swaps);
        assert_eq!(translated.depth, canon.depth);
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        let device = olsq2_arch::line(4);
        let config = SynthesisConfig::with_swap_duration(1);
        // Chains of different length — single gates like `cx 0,1` and
        // `cx 2,3` would canonicalize to the SAME key (that is the point
        // of the cache), so distinct keys need distinct structure.
        let chains: [&[(u16, u16)]; 3] = [&[(0, 1)], &[(0, 1), (1, 2)], &[(0, 1), (1, 2), (2, 3)]];
        let keys: Vec<CacheKey> = chains
            .iter()
            .map(|pairs| {
                let c = cx_chain(pairs, 4);
                canonicalize(&c, &device, &config, Objective::Depth).key
            })
            .collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
        let mut cache = ResultCache::new(2);
        cache.insert(keys[0].clone(), dummy_result(vec![0, 1, 2, 3]));
        cache.insert(keys[1].clone(), dummy_result(vec![1, 0, 2, 3]));
        // Refresh key 0, then insert key 2: key 1 must be the victim.
        assert!(cache.get(&keys[0]).is_some());
        cache.insert(keys[2].clone(), dummy_result(vec![2, 1, 0, 3]));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&keys[0]).is_some(), "refreshed entry survives");
        assert!(cache.get(&keys[1]).is_none(), "LRU entry evicted");
        assert!(cache.get(&keys[2]).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let device = olsq2_arch::line(2);
        let config = SynthesisConfig::with_swap_duration(1);
        let key = canonicalize(&cx_chain(&[(0, 1)], 2), &device, &config, Objective::Depth).key;
        let mut cache = ResultCache::new(1);
        cache.insert(key.clone(), dummy_result(vec![0, 1]));
        cache.insert(key.clone(), dummy_result(vec![1, 0]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&key).unwrap().result.initial_mapping, vec![1, 0]);
    }

    #[test]
    fn untouched_qubits_keep_relative_order() {
        // Qubits 1 and 3 appear in no gate; they take labels after the
        // touched ones, in index order.
        let c = cx_chain(&[(2, 0)], 4);
        assert_eq!(canonical_relabeling(&c), vec![1, 2, 0, 3]);
    }
}
