//! End-to-end service tests: queue → worker pool → cache → metrics,
//! deadline degradation, priorities, cancellation, and the JSONL batch
//! driver.

use olsq2_arch::{grid, line};
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_circuit::{Circuit, Gate, GateKind};
use olsq2_layout::verify;
use olsq2_service::{
    manifest, JobStatus, Objective, Priority, ServiceConfig, SubmitError, SynthesisRequest,
    SynthesisService,
};
use std::time::Duration;

fn cx_chain(pairs: &[(u16, u16)], n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for &(a, b) in pairs {
        c.push(Gate::two(GateKind::Cx, a, b));
    }
    c
}

fn small_request(name: &str, circuit: Circuit) -> SynthesisRequest {
    let mut req = SynthesisRequest::new(name, circuit, line(3), Objective::Depth);
    req.config.swap_duration = 1;
    req
}

#[test]
fn queue_pool_cache_metrics_end_to_end() {
    let mut service = SynthesisService::start(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 32,
        ..ServiceConfig::default()
    });

    // Three structurally distinct circuits...
    let originals = [
        cx_chain(&[(0, 1), (1, 2)], 3),
        cx_chain(&[(0, 1), (1, 2), (0, 2)], 3),
        cx_chain(&[(0, 1)], 3),
    ];
    // ...and a qubit relabeling of each (σ: 0→2, 1→0, 2→1).
    let relabeled: Vec<Circuit> = originals
        .iter()
        .map(|c| c.permute_qubits(&[2, 0, 1]))
        .collect();

    // Phase 1: solve the originals (all misses).
    let first: Vec<_> = originals
        .iter()
        .enumerate()
        .map(|(i, c)| {
            service
                .submit(small_request(&format!("orig-{i}"), c.clone()))
                .expect("queue has room")
        })
        .collect();
    for (i, handle) in first.iter().enumerate() {
        match handle.wait() {
            JobStatus::Done(out) => {
                assert!(!out.cache_hit, "first solve of orig-{i} cannot hit");
                assert!(out.proven_optimal);
                assert!(!out.degraded);
                assert_eq!(verify(&originals[i], &line(3), &out.result), Ok(()));
            }
            other => panic!("orig-{i}: expected Done, got {other:?}"),
        }
    }

    // Phase 2: the relabeled twins must all be served from the cache, and
    // the translated results must be valid for the *relabeled* circuits.
    let second: Vec<_> = relabeled
        .iter()
        .enumerate()
        .map(|(i, c)| {
            service
                .submit(small_request(&format!("twin-{i}"), c.clone()))
                .expect("queue has room")
        })
        .collect();
    for (i, handle) in second.iter().enumerate() {
        match handle.wait() {
            JobStatus::Done(out) => {
                assert!(out.cache_hit, "twin-{i} must be served from cache");
                assert!(out.proven_optimal);
                assert!(out.solver_stats.is_none(), "cache hits skip the solver");
                assert_eq!(
                    verify(&relabeled[i], &line(3), &out.result),
                    Ok(()),
                    "translated hit must be valid for the relabeled circuit"
                );
            }
            other => panic!("twin-{i}: expected Done, got {other:?}"),
        }
    }

    let m = service.metrics();
    assert_eq!(m.submitted, 6);
    assert_eq!(m.done, 6);
    assert_eq!(m.failed, 0);
    assert_eq!(m.cancelled, 0);
    assert_eq!(m.queued, 0);
    assert_eq!(m.running, 0);
    assert_eq!(m.cache.hits, 3);
    assert_eq!(m.cache.misses, 3);
    assert!(m.p95_latency >= m.p50_latency);
    assert!(m.p50_latency > Duration::ZERO);
    assert!(m.solver.propagations > 0, "real solves ran");
    service.shutdown();
}

#[test]
fn deadline_degrades_to_best_so_far() {
    // On this instance the depth phase finds a first solution in well
    // under a second (debug build), but the full SWAP Pareto descent
    // takes tens of seconds — the 5s deadline cuts it mid-descent, and
    // the service must hand back the incumbent tagged non-optimal.
    let mut service = SynthesisService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 8,
        ..ServiceConfig::default()
    });
    let circuit = qaoa_circuit(8, 4);
    let mut req = SynthesisRequest::new("qaoa", circuit.clone(), grid(3, 3), Objective::Swaps);
    req.config.swap_duration = 1;
    req.deadline = Some(Duration::from_secs(5));
    let handle = service.submit(req).expect("queue has room");
    match handle.wait() {
        JobStatus::Done(out) => {
            assert!(out.degraded, "deadline must degrade, not complete");
            assert!(!out.proven_optimal);
            assert!(!out.cache_hit);
            assert_eq!(verify(&circuit, &grid(3, 3), &out.result), Ok(()));
        }
        other => panic!("expected degraded Done, got {other:?}"),
    }
    let m = service.metrics();
    assert_eq!(m.degraded, 1);
    assert_eq!(m.done, 1);
    // Degraded results must NOT be cached: a resubmission is a miss.
    let mut req2 = SynthesisRequest::new("qaoa-again", circuit, grid(3, 3), Objective::Swaps);
    req2.config.swap_duration = 1;
    req2.deadline = Some(Duration::from_millis(1500));
    let _ = service.submit(req2).expect("queue has room").wait();
    assert_eq!(service.metrics().cache.hits, 0);
    service.shutdown();
}

#[test]
fn priorities_cancellation_and_backpressure() {
    let mut service = SynthesisService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        cache_capacity: 8,
        ..ServiceConfig::default()
    });
    // Occupy the single worker with a job that runs for a while.
    let mut blocker =
        SynthesisRequest::new("blocker", qaoa_circuit(8, 4), grid(3, 3), Objective::Swaps);
    blocker.config.swap_duration = 1;
    blocker.deadline = Some(Duration::from_secs(4));
    let blocker_handle = service.submit(blocker).expect("queue has room");
    // Give the worker a moment to pick it up, so the queue is empty.
    while matches!(blocker_handle.poll(), JobStatus::Queued) {
        std::thread::yield_now();
    }

    // Queue a low- and then a high-priority job; the high one must be
    // dequeued first once the blocker finishes.
    let mut low = small_request("low", cx_chain(&[(0, 1), (1, 2)], 3));
    low.priority = Priority::Low;
    let mut high = small_request("high", cx_chain(&[(0, 1), (1, 2), (0, 2)], 3));
    high.priority = Priority::High;
    let low_handle = service.submit(low).expect("slot 1");
    let high_handle = service.submit(high).expect("slot 2");
    // Queue is now at capacity (2) while the worker is busy.
    let extra = small_request("extra", cx_chain(&[(0, 2)], 3));
    assert_eq!(service.submit(extra).unwrap_err(), SubmitError::QueueFull);

    let (JobStatus::Done(high_out), JobStatus::Done(low_out)) =
        (high_handle.wait(), low_handle.wait())
    else {
        panic!("both queued jobs complete")
    };
    assert!(
        high_out.wait < low_out.wait,
        "high priority must leave the queue first (waits: high {:?}, low {:?})",
        high_out.wait,
        low_out.wait
    );
    assert!(blocker_handle.wait().is_terminal());

    // Cancelling a queued job drops it before it runs.
    let mut blocker2 =
        SynthesisRequest::new("blocker2", qaoa_circuit(8, 4), grid(3, 3), Objective::Swaps);
    blocker2.config.swap_duration = 1;
    blocker2.deadline = Some(Duration::from_secs(4));
    let b2 = service.submit(blocker2).expect("queue has room");
    while matches!(b2.poll(), JobStatus::Queued) {
        std::thread::yield_now();
    }
    let doomed = service
        .submit(small_request("doomed", cx_chain(&[(0, 1)], 3)))
        .expect("room");
    doomed.cancel();
    match doomed.wait() {
        JobStatus::Cancelled => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(service.metrics().cancelled >= 1);
    service.shutdown();
    // After shutdown, submissions are rejected.
    assert_eq!(
        service
            .submit(small_request("late", cx_chain(&[(0, 1)], 3)))
            .unwrap_err(),
        SubmitError::ShuttingDown
    );
}

#[test]
fn manifest_batch_with_relabeled_duplicates_hits_cache() {
    // twin-a is a qubit relabeling of job-a (0→2, 1→0, 2→1): the batch
    // must show at least one cache hit.
    let text = r#"
# three jobs, one a relabeled duplicate
{"name":"job-a","device":"line3","objective":"depth","swap_duration":1,"circuit":{"num_qubits":3,"gates":[["cx",0,1],["cx",1,2]]}}
{"name":"twin-a","device":"line3","objective":"depth","swap_duration":1,"circuit":{"num_qubits":3,"gates":[["cx",2,0],["cx",0,1]]}}
{"name":"job-b","device":"line3","objective":"swaps","swap_duration":1,"priority":"high","circuit":{"num_qubits":3,"gates":[["cx",0,1],["cx",1,2],["cx",0,2]]}}
"#;
    let requests = manifest::parse_manifest(text).expect("manifest parses");
    assert_eq!(requests.len(), 3);
    assert_eq!(requests[2].priority, Priority::High);
    let (statuses, metrics) = manifest::run_batch(
        requests,
        ServiceConfig {
            workers: 1, // serialize so the twin always lands after job-a
            queue_capacity: 8,
            cache_capacity: 8,
            ..ServiceConfig::default()
        },
    );
    assert_eq!(statuses.len(), 3);
    for (name, _, status) in &statuses {
        assert!(
            matches!(status, JobStatus::Done(_)),
            "{name} should be done, got {status:?}"
        );
    }
    assert!(metrics.cache.hits > 0, "relabeled duplicate must hit");
    assert_eq!(metrics.done, 3);

    // The JSONL emission round-trips through the in-crate parser.
    for (name, tenant, status) in &statuses {
        let line = manifest::status_to_json(name, tenant, status).to_string();
        let parsed = olsq2_service::json::parse(&line).expect("result line is valid JSON");
        assert_eq!(parsed.get("name").unwrap().as_str(), Some(name.as_str()));
        assert_eq!(parsed.get("tenant").unwrap().as_str(), Some("default"));
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("done"));
    }
    let summary = manifest::metrics_to_json(&metrics).to_string();
    let parsed = olsq2_service::json::parse(&summary).expect("summary is valid JSON");
    assert_eq!(
        parsed
            .get("metrics")
            .and_then(|m| m.get("jobs"))
            .and_then(|j| j.get("done"))
            .and_then(|d| d.as_u64()),
        Some(3)
    );
}

#[test]
fn manifest_rejects_malformed_lines() {
    assert!(manifest::parse_manifest("{\"name\":\"x\"}").is_err()); // no device
    let bad_device =
        r#"{"name":"x","device":"nope","circuit":{"num_qubits":2,"gates":[["cx",0,1]]}}"#;
    assert!(manifest::parse_manifest(bad_device).is_err());
    let too_big =
        r#"{"name":"x","device":"line2","circuit":{"num_qubits":5,"gates":[["cx",0,1]]}}"#;
    assert!(manifest::parse_manifest(too_big).is_err());
    let bad_gate =
        r#"{"name":"x","device":"line3","circuit":{"num_qubits":3,"gates":[["cx",0,0]]}}"#;
    assert!(manifest::parse_manifest(bad_gate).is_err());
    let err = manifest::parse_manifest("\n\n{oops}").unwrap_err();
    assert_eq!(err.line, 3);
}

#[test]
fn traced_jobs_produce_nested_spans_and_prometheus_metrics() {
    let recorder = olsq2::Recorder::new();
    let mut service = SynthesisService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 8,
        recorder: recorder.clone(),
        ..ServiceConfig::default()
    });
    let a = service
        .submit(small_request("traced-a", cx_chain(&[(0, 1), (1, 2)], 3)))
        .expect("room");
    let b = service
        .submit(small_request("traced-b", cx_chain(&[(0, 2)], 3)))
        .expect("room");
    assert!(matches!(a.wait(), JobStatus::Done(_)));
    assert!(matches!(b.wait(), JobStatus::Done(_)));

    let snap = recorder.snapshot();
    let jobs: Vec<_> = snap.spans.iter().filter(|s| s.name == "job").collect();
    assert_eq!(jobs.len(), 2, "one span per job");
    for job in &jobs {
        assert!(job.dur_us.is_some(), "job span closed");
        let field = |key: &str| job.fields.iter().find(|(k, _)| k == key);
        assert!(field("job_id").is_some());
        assert!(field("queue_wait_us").is_some());
        assert!(
            matches!(field("objective"), Some((_, v)) if v.to_string() == "depth"),
            "objective tagged"
        );
        assert!(
            matches!(field("status"), Some((_, v)) if v.to_string() == "done"),
            "terminal status tagged"
        );
    }
    // Synthesizer spans opened on the worker thread nest under a job span.
    let job_ids: Vec<u64> = jobs.iter().map(|s| s.id).collect();
    let nested = snap
        .spans
        .iter()
        .filter(|s| s.name == "optimize_depth")
        .all(|s| matches!(s.parent, Some(p) if job_ids.contains(&p)));
    assert!(nested, "optimize_depth spans must parent under job spans");
    assert!(
        snap.spans.iter().any(|s| s.name == "optimize_depth"),
        "synthesizer spans recorded"
    );
    assert!(*snap.counters.get("sat.solves").unwrap_or(&0) > 0);

    // Prometheus exposition covers service metrics and recorder counters.
    let prom = service.prometheus_text();
    assert!(prom.contains("olsq2_jobs_done 2"));
    assert!(prom.contains("olsq2_sat_solves"));
    assert!(prom.contains("# TYPE olsq2_latency_p99_us gauge"));
    service.shutdown();
}

#[test]
fn cube_jobs_run_through_the_service_and_expose_cube_metrics() {
    let recorder = olsq2::Recorder::new();
    let mut service = SynthesisService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 0, // no cache: both jobs must actually solve
        recorder: recorder.clone(),
        ..ServiceConfig::default()
    });
    let circuit = qaoa_circuit(4, 0xA5);
    let device = line(4);

    // The same instance, sequentially and through the cube engine.
    let mut seq = SynthesisRequest::new("seq", circuit.clone(), device.clone(), Objective::Depth);
    seq.config.swap_duration = 1;
    let mut cube = SynthesisRequest::new("cube", circuit.clone(), device.clone(), Objective::Depth)
        .with_cube(olsq2::CubeParams {
            workers: 2,
            ..olsq2::CubeParams::default()
        });
    cube.config.swap_duration = 1;

    let seq_handle = service.submit(seq).expect("room");
    let cube_handle = service.submit(cube).expect("room");
    let seq_out = match seq_handle.wait() {
        JobStatus::Done(out) => out,
        other => panic!("sequential job should finish, got {other:?}"),
    };
    let cube_out = match cube_handle.wait() {
        JobStatus::Done(out) => out,
        other => panic!("cube job should finish, got {other:?}"),
    };

    // Same optimum, both proven, and the cube result verifies.
    assert!(seq_out.proven_optimal && cube_out.proven_optimal);
    assert_eq!(seq_out.result.depth, cube_out.result.depth);
    assert_eq!(verify(&circuit, &device, &cube_out.result), Ok(()));

    // The cube scheduler's counters surface in the Prometheus exposition.
    let prom = service.prometheus_text();
    assert!(prom.contains("olsq2_cube_cubes_split"));
    assert!(prom.contains("olsq2_cube_steals"));
    assert!(prom.contains("olsq2_jobs_done 2"));
    service.shutdown();
}

#[test]
fn manifest_parses_cube_knobs() {
    let line = r#"{"name":"big","device":"line4","objective":"depth","cube_workers":4,"cube_depth":3,"circuit":{"num_qubits":3,"gates":[["cx",0,1],["cx",1,2]]}}"#;
    let req = manifest::parse_request(line).expect("parses");
    let params = req.cube.expect("cube params set");
    assert_eq!(params.workers, 4);
    assert_eq!(params.depth, 3);

    // Either knob alone opts in, with the other defaulted.
    let only_depth = r#"{"name":"d","device":"line3","cube_depth":2,"circuit":{"num_qubits":2,"gates":[["cx",0,1]]}}"#;
    let req = manifest::parse_request(only_depth).expect("parses");
    assert_eq!(req.cube.expect("set").depth, 2);

    // Out-of-range knobs are rejected, and plain jobs stay sequential.
    let bad = r#"{"name":"b","device":"line3","cube_workers":0,"circuit":{"num_qubits":2,"gates":[["cx",0,1]]}}"#;
    assert!(manifest::parse_request(bad).is_err());
    let plain = r#"{"name":"p","device":"line3","circuit":{"num_qubits":2,"gates":[["cx",0,1]]}}"#;
    assert!(manifest::parse_request(plain)
        .expect("parses")
        .cube
        .is_none());
}

#[test]
fn manifest_legacy_solver_pins_search_features() {
    let legacy = r#"{"name":"l","device":"line3","legacy_solver":true,"circuit":{"num_qubits":2,"gates":[["cx",0,1]]}}"#;
    let req = manifest::parse_request(legacy).expect("parses");
    assert_eq!(
        req.config.solver_features,
        olsq2::SolverFeatures::legacy(),
        "legacy_solver:true must disable every modern search policy"
    );

    // Absent or false leaves the modern defaults in place.
    let modern = r#"{"name":"m","device":"line3","legacy_solver":false,"circuit":{"num_qubits":2,"gates":[["cx",0,1]]}}"#;
    let req = manifest::parse_request(modern).expect("parses");
    assert_eq!(req.config.solver_features, olsq2::SolverFeatures::default());

    // Non-boolean values are rejected with a readable error.
    let bad = r#"{"name":"b","device":"line3","legacy_solver":"yes","circuit":{"num_qubits":2,"gates":[["cx",0,1]]}}"#;
    assert!(manifest::parse_request(bad).is_err());
}

#[test]
fn deadline_killed_job_dumps_an_ingestible_flight_recording() {
    let dump_dir = std::env::temp_dir().join(format!("olsq2-flight-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dump_dir).expect("create dump dir");

    let mut service = SynthesisService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 8,
        flight: Some(olsq2_service::FlightSettings {
            capacity: 512,
            every: 1, // sample every conflict: even a short run fills the ring
            dir: Some(dump_dir.clone()),
        }),
        ..ServiceConfig::default()
    });
    // Same shape as deadline_degrades_to_best_so_far: the SWAP descent
    // cannot finish inside the deadline, so the job ends degraded.
    let mut req = SynthesisRequest::new("doomed", qaoa_circuit(8, 4), grid(3, 3), Objective::Swaps);
    req.config.swap_duration = 1;
    req.deadline = Some(Duration::from_secs(3));
    let handle = service.submit(req).expect("queue has room");
    let id = handle.id();
    match handle.wait() {
        JobStatus::Done(out) => assert!(out.degraded, "deadline must degrade the job"),
        other => panic!("expected degraded Done, got {other:?}"),
    }

    // The post-mortem dump is on disk and parses back into a FlightDump
    // whose final search sample carries real solver dynamics — the input
    // trace-diff's flight footer reads.
    let path = dump_dir.join(format!("job-{id}.flight.jsonl"));
    let text = std::fs::read_to_string(&path).expect("flight dump written on deadline expiry");
    let dump = olsq2_obs::FlightDump::parse_jsonl(&text).expect("dump is versioned JSONL");
    assert_eq!(dump.version, olsq2_obs::FLIGHT_VERSION);
    assert!(dump.emitted > 0, "a multi-second search must emit samples");
    let last = dump.last_search().expect("search samples present");
    assert!(last.conflicts > 0);
    assert!(last.propagations > 0);

    // The live endpoint serves the same ring.
    let live = service
        .introspection()
        .flight_jsonl(id)
        .expect("ring registered for the job");
    assert!(live.contains("\"type\":\"flight_meta\""));

    service.shutdown();
    std::fs::remove_dir_all(&dump_dir).ok();
}

#[test]
fn snapshot_on_preempt_resumes_resubmissions_from_a_fork() {
    let rec = olsq2::Recorder::new();
    let mut service = SynthesisService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 8,
        recorder: rec.clone(),
        snapshot_on_preempt: true,
        ..ServiceConfig::default()
    });
    // Same shape as deadline_degrades_to_best_so_far: the SWAP descent
    // cannot finish inside the deadline, so the job ends degraded — and,
    // with snapshot_on_preempt, publishes a solver snapshot.
    let circuit = qaoa_circuit(8, 4);
    let mut req = SynthesisRequest::new("qaoa", circuit.clone(), grid(3, 3), Objective::Swaps);
    req.config.swap_duration = 1;
    req.deadline = Some(Duration::from_secs(4));
    match service.submit(req).expect("queue has room").wait() {
        JobStatus::Done(out) => {
            assert!(out.degraded, "deadline must degrade, not complete");
            assert_eq!(verify(&circuit, &grid(3, 3), &out.result), Ok(()));
        }
        other => panic!("expected degraded Done, got {other:?}"),
    }
    // A resubmission of the same instance forks the stored snapshot
    // instead of re-encoding, and the resumed run is still valid.
    let mut req2 =
        SynthesisRequest::new("qaoa-resume", circuit.clone(), grid(3, 3), Objective::Swaps);
    req2.config.swap_duration = 1;
    req2.deadline = Some(Duration::from_secs(4));
    match service.submit(req2).expect("queue has room").wait() {
        JobStatus::Done(out) => {
            assert_eq!(verify(&circuit, &grid(3, 3), &out.result), Ok(()));
        }
        other => panic!("expected Done, got {other:?}"),
    }
    let snap = rec.snapshot();
    assert!(
        snap.spans
            .iter()
            .any(|s| s.name == "job" && s.fields.iter().any(|(k, _)| k == "snapshot_resume")),
        "second job must be tagged as resuming from the stored snapshot"
    );
    assert!(
        snap.spans.iter().any(|s| s.name == "fork"),
        "the resumed job must fork the snapshot, not re-encode"
    );
    service.shutdown();
}
