//! Emission of the final physical circuit: the program's gates remapped to
//! physical qubits with SWAP gates inserted, as in the paper's Fig. 4.

use crate::result::LayoutResult;
use olsq2_arch::CouplingGraph;
use olsq2_circuit::{Circuit, Gate, GateKind, Operands};

/// Builds the executable physical circuit for a layout result.
///
/// Gates appear in time order with their operands translated through the
/// evolving mapping; each inserted SWAP appears as a `swap` gate at its
/// position in time (decompose afterwards with
/// [`Circuit::decompose_swaps`] for a CNOT-only circuit).
///
/// The result is only meaningful for a verified layout; this function does
/// not re-check validity.
///
/// # Examples
///
/// ```
/// use olsq2_layout::{emit_physical_circuit, LayoutResult, SwapOp};
/// use olsq2_arch::line;
/// use olsq2_circuit::{Circuit, Gate, GateKind};
/// let mut c = Circuit::new(2);
/// c.push(Gate::two(GateKind::Cx, 0, 1));
/// let r = LayoutResult {
///     initial_mapping: vec![0, 2],
///     schedule: vec![2],
///     swaps: vec![SwapOp { edge: 1, finish_time: 1 }],
///     depth: 3,
///     swap_duration: 1,
/// };
/// let phys = emit_physical_circuit(&c, &line(3), &r);
/// assert_eq!(phys.num_gates(), 2); // the swap + the cx
/// ```
pub fn emit_physical_circuit(
    circuit: &Circuit,
    graph: &CouplingGraph,
    result: &LayoutResult,
) -> Circuit {
    #[derive(Clone, Copy)]
    enum Event {
        Gate(usize),
        Swap(usize),
    }
    let mut events: Vec<(usize, u8, Event)> = Vec::new();
    for (g, &t) in result.schedule.iter().enumerate() {
        events.push((t, 0, Event::Gate(g)));
    }
    for (i, s) in result.swaps.iter().enumerate() {
        events.push((s.finish_time, 1, Event::Swap(i)));
    }
    events.sort_by_key(|&(t, kind, _)| (t, kind));

    let edges = graph.edges();
    let mut mapping = result.initial_mapping.clone();
    let mut out = Circuit::with_name(
        graph.num_qubits(),
        format!("{}@{}", circuit.name(), graph.name()),
    );
    for (_, _, ev) in events {
        match ev {
            Event::Gate(g) => {
                let gate = circuit.gate(g);
                let operands = match gate.operands {
                    Operands::One(q) => Operands::One(mapping[q as usize]),
                    Operands::Two(a, b) => Operands::Two(mapping[a as usize], mapping[b as usize]),
                };
                out.push(Gate::new(gate.kind.clone(), operands));
            }
            Event::Swap(i) => {
                let (a, b) = edges[result.swaps[i].edge];
                out.push(Gate::two(GateKind::Swap, a, b));
                for m in &mut mapping {
                    if *m == a {
                        *m = b;
                    } else if *m == b {
                        *m = a;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SwapOp;
    use crate::verify::verify;
    use olsq2_arch::line;

    #[test]
    fn emission_tracks_mapping_through_swaps() {
        // cx(q0,q1) twice with a swap between them.
        let mut c = Circuit::new(2);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 0, 1));
        let graph = line(3);
        let r = LayoutResult {
            initial_mapping: vec![0, 1],
            schedule: vec![0, 2],
            swaps: vec![SwapOp {
                edge: 0,
                finish_time: 1,
            }], // p0<->p1
            depth: 3,
            swap_duration: 1,
        };
        assert_eq!(verify(&c, &graph, &r), Ok(()));
        let phys = emit_physical_circuit(&c, &graph, &r);
        assert_eq!(phys.num_gates(), 3);
        // First cx on (0,1), then swap(0,1), then cx with flipped operands.
        assert_eq!(phys.gate(0).operands, Operands::Two(0, 1));
        assert_eq!(phys.gate(1).kind, GateKind::Swap);
        assert_eq!(phys.gate(2).operands, Operands::Two(1, 0));
    }

    #[test]
    fn decomposed_emission_is_cx_only() {
        let mut c = Circuit::new(2);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        let graph = line(3);
        let r = LayoutResult {
            initial_mapping: vec![0, 2],
            schedule: vec![2],
            swaps: vec![SwapOp {
                edge: 1,
                finish_time: 1,
            }],
            depth: 3,
            swap_duration: 1,
        };
        let phys = emit_physical_circuit(&c, &graph, &r).decompose_swaps();
        assert_eq!(phys.num_gates(), 4);
        assert!(phys.gates().iter().all(|g| g.kind == GateKind::Cx));
    }
}
