//! The validity oracle: checks a [`LayoutResult`] against the five
//! constraints of §II-A. Every synthesizer and baseline in this repository
//! is tested through this verifier.

use crate::result::LayoutResult;
use olsq2_arch::CouplingGraph;
use olsq2_circuit::{Circuit, DependencyGraph, Operands};
use std::fmt;

/// A violated validity constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The schedule length does not match the gate count, or a mapping has
    /// the wrong arity.
    Malformed(String),
    /// Constraint 1: two program qubits share a physical qubit.
    MappingNotInjective {
        /// Time step of the collision.
        time: usize,
        /// The colliding program qubits.
        qubits: (u16, u16),
    },
    /// Constraint 2: a dependency `(g, g')` is scheduled out of order.
    DependencyViolated {
        /// The earlier gate in program order.
        earlier: usize,
        /// The later gate scheduled at or before the earlier one.
        later: usize,
    },
    /// Constraint 3: a two-qubit gate executes on non-adjacent qubits.
    GateNotAdjacent {
        /// The gate index.
        gate: usize,
        /// Its scheduled time.
        time: usize,
        /// The physical qubits it would run on.
        physical: (u16, u16),
    },
    /// Constraint 5: a SWAP overlaps another operation on a qubit.
    Overlap {
        /// The physical qubit with two simultaneous operations.
        physical: u16,
        /// The time step of the collision.
        time: usize,
    },
    /// A gate or SWAP is scheduled outside `0..depth`, or a SWAP starts
    /// before time 0.
    OutOfWindow(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Malformed(m) => write!(f, "malformed result: {m}"),
            Violation::MappingNotInjective { time, qubits } => write!(
                f,
                "qubits q{} and q{} mapped to the same physical qubit at t={time}",
                qubits.0, qubits.1
            ),
            Violation::DependencyViolated { earlier, later } => {
                write!(
                    f,
                    "gate g{later} scheduled no later than its predecessor g{earlier}"
                )
            }
            Violation::GateNotAdjacent {
                gate,
                time,
                physical,
            } => write!(
                f,
                "two-qubit gate g{gate} at t={time} on non-adjacent p{} and p{}",
                physical.0, physical.1
            ),
            Violation::Overlap { physical, time } => {
                write!(f, "two operations occupy p{physical} at t={time}")
            }
            Violation::OutOfWindow(m) => write!(f, "operation outside the time window: {m}"),
        }
    }
}

/// Checks all five §II-A constraints with the paper's plain dependency
/// rule. Returns every violation found.
///
/// # Errors
///
/// Returns the non-empty list of violations if the result is invalid.
pub fn verify(
    circuit: &Circuit,
    graph: &CouplingGraph,
    result: &LayoutResult,
) -> Result<(), Vec<Violation>> {
    verify_with_dag(circuit, graph, result, &DependencyGraph::new(circuit))
}

/// Like [`verify`], but dependency ordering (constraint 2) is checked
/// against a caller-supplied dependency graph — used with
/// [`DependencyGraph::new_with_commutation`] when commuting gates were
/// allowed to reorder (gate absorption).
///
/// # Errors
///
/// Returns the non-empty list of violations if the result is invalid.
pub fn verify_with_dag(
    circuit: &Circuit,
    graph: &CouplingGraph,
    result: &LayoutResult,
    dag: &DependencyGraph,
) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();
    let sd = result.swap_duration.max(1);

    if result.schedule.len() != circuit.num_gates() {
        violations.push(Violation::Malformed(format!(
            "schedule has {} entries for {} gates",
            result.schedule.len(),
            circuit.num_gates()
        )));
        return Err(violations);
    }
    if result.initial_mapping.len() != circuit.num_qubits() {
        violations.push(Violation::Malformed(format!(
            "initial mapping has {} entries for {} program qubits",
            result.initial_mapping.len(),
            circuit.num_qubits()
        )));
        return Err(violations);
    }
    if result
        .initial_mapping
        .iter()
        .any(|&p| (p as usize) >= graph.num_qubits())
    {
        violations.push(Violation::Malformed(
            "initial mapping targets nonexistent physical qubit".into(),
        ));
        return Err(violations);
    }

    // Constraint 1 (initial injectivity; SWAP replay preserves it).
    let mut owner = vec![None::<u16>; graph.num_qubits()];
    for (q, &p) in result.initial_mapping.iter().enumerate() {
        if let Some(other) = owner[p as usize] {
            violations.push(Violation::MappingNotInjective {
                time: 0,
                qubits: (other, q as u16),
            });
        }
        owner[p as usize] = Some(q as u16);
    }

    // Constraint 2: dependencies strictly ordered.
    for &(g, g2) in dag.dependencies() {
        if result.schedule[g] >= result.schedule[g2] {
            violations.push(Violation::DependencyViolated {
                earlier: g,
                later: g2,
            });
        }
    }

    // Time window checks.
    for (g, &t) in result.schedule.iter().enumerate() {
        if t >= result.depth {
            violations.push(Violation::OutOfWindow(format!(
                "gate g{g} at t={t} with depth {}",
                result.depth
            )));
        }
    }
    for swap in &result.swaps {
        if swap.edge >= graph.num_edges() {
            violations.push(Violation::Malformed(format!(
                "swap references edge {} of {}",
                swap.edge,
                graph.num_edges()
            )));
            return Err(violations);
        }
        if swap.finish_time >= result.depth {
            violations.push(Violation::OutOfWindow(format!(
                "swap finishing at t={} with depth {}",
                swap.finish_time, result.depth
            )));
        }
        if swap.finish_time + 1 < sd {
            violations.push(Violation::OutOfWindow(format!(
                "swap finishing at t={} would start before t=0 (S_D={sd})",
                swap.finish_time
            )));
        }
    }

    // Constraints 3–5 via occupancy replay over time.
    let edges = graph.edges();
    // occupancy[p] = last time step at which p was seen busy, with an op id.
    let depth = result.depth;
    let mut busy: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.num_qubits()]; // (time, op)
    let mut op_id = 0usize;
    // SWAP occupancy.
    for swap in &result.swaps {
        let (a, b) = edges[swap.edge];
        let start = (swap.finish_time + 1).saturating_sub(sd);
        for t in start..=swap.finish_time.min(depth.saturating_sub(1)) {
            busy[a as usize].push((t, op_id));
            busy[b as usize].push((t, op_id));
        }
        op_id += 1;
    }
    // Gate occupancy + adjacency, evaluated under the mapping at t_g.
    for (g, gate) in circuit.gates().iter().enumerate() {
        let t = result.schedule[g];
        let mapping = result.mapping_at(t, edges);
        match gate.operands {
            Operands::One(q) => {
                busy[mapping[q as usize] as usize].push((t, op_id));
            }
            Operands::Two(q, q2) => {
                let (pa, pb) = (mapping[q as usize], mapping[q2 as usize]);
                if !graph.is_adjacent(pa, pb) {
                    violations.push(Violation::GateNotAdjacent {
                        gate: g,
                        time: t,
                        physical: (pa, pb),
                    });
                }
                busy[pa as usize].push((t, op_id));
                busy[pb as usize].push((t, op_id));
            }
        }
        op_id += 1;
    }
    // Collision scan.
    for (p, slots) in busy.iter_mut().enumerate() {
        slots.sort_unstable();
        for w in slots.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 != w[1].1 {
                violations.push(Violation::Overlap {
                    physical: p as u16,
                    time: w[0].0,
                });
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SwapOp;
    use olsq2_arch::line;
    use olsq2_circuit::{Gate, GateKind};

    fn cx_chain() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        c
    }

    #[test]
    fn accepts_identity_layout() {
        let circuit = cx_chain();
        let graph = line(3);
        let result = LayoutResult {
            initial_mapping: vec![0, 1, 2],
            schedule: vec![0, 1],
            swaps: vec![],
            depth: 2,
            swap_duration: 3,
        };
        assert_eq!(verify(&circuit, &graph, &result), Ok(()));
    }

    #[test]
    fn detects_non_adjacent_gate() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        let graph = line(3);
        let result = LayoutResult {
            initial_mapping: vec![0, 2],
            schedule: vec![0],
            swaps: vec![],
            depth: 1,
            swap_duration: 3,
        };
        let errs = verify(&circuit, &graph, &result).unwrap_err();
        assert!(matches!(errs[0], Violation::GateNotAdjacent { .. }));
    }

    #[test]
    fn detects_dependency_violation() {
        let circuit = cx_chain();
        let graph = line(3);
        let result = LayoutResult {
            initial_mapping: vec![0, 1, 2],
            schedule: vec![1, 1],
            swaps: vec![],
            depth: 2,
            swap_duration: 3,
        };
        let errs = verify(&circuit, &graph, &result).unwrap_err();
        assert!(errs.iter().any(|v| matches!(
            v,
            Violation::DependencyViolated {
                earlier: 0,
                later: 1
            }
        )));
    }

    #[test]
    fn detects_mapping_collision() {
        let circuit = cx_chain();
        let graph = line(3);
        let result = LayoutResult {
            initial_mapping: vec![0, 1, 1],
            schedule: vec![0, 1],
            swaps: vec![],
            depth: 2,
            swap_duration: 3,
        };
        let errs = verify(&circuit, &graph, &result).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::MappingNotInjective { .. })));
    }

    #[test]
    fn swap_enables_distant_gate() {
        // q0 on p0, q1 on p2 of a 3-line; swap p1-p2 brings q1 next to q0.
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        let graph = line(3);
        let result = LayoutResult {
            initial_mapping: vec![0, 2],
            schedule: vec![3], // after the swap finishing at 2 (S_D=3: occupies 0..=2)
            swaps: vec![SwapOp {
                edge: 1,
                finish_time: 2,
            }],
            depth: 4,
            swap_duration: 3,
        };
        assert_eq!(verify(&circuit, &graph, &result), Ok(()));
    }

    #[test]
    fn detects_gate_swap_overlap() {
        // Gate on p0/p1 at t=1 while a swap occupies p1 during 0..=2.
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        let graph = line(3);
        let result = LayoutResult {
            initial_mapping: vec![0, 1],
            schedule: vec![1],
            swaps: vec![SwapOp {
                edge: 1,
                finish_time: 2,
            }],
            depth: 4,
            swap_duration: 3,
        };
        let errs = verify(&circuit, &graph, &result).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::Overlap { physical: 1, .. })));
    }

    #[test]
    fn detects_out_of_window_ops() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        let graph = line(2);
        let result = LayoutResult {
            initial_mapping: vec![0, 1],
            schedule: vec![5],
            swaps: vec![SwapOp {
                edge: 0,
                finish_time: 0,
            }],
            depth: 2,
            swap_duration: 3,
        };
        let errs = verify(&circuit, &graph, &result).unwrap_err();
        // Gate at t=5 beyond depth 2, and a swap that would start at t=-2.
        assert!(
            errs.iter()
                .filter(|v| matches!(v, Violation::OutOfWindow(_)))
                .count()
                >= 2
        );
    }

    #[test]
    fn rejects_malformed_schedule() {
        let circuit = cx_chain();
        let graph = line(3);
        let result = LayoutResult {
            initial_mapping: vec![0, 1, 2],
            schedule: vec![0],
            swaps: vec![],
            depth: 1,
            swap_duration: 1,
        };
        let errs = verify(&circuit, &graph, &result).unwrap_err();
        assert!(matches!(errs[0], Violation::Malformed(_)));
    }

    #[test]
    fn simultaneous_disjoint_gates_are_fine() {
        let mut circuit = Circuit::new(4);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 2, 3));
        let graph = line(4);
        let result = LayoutResult {
            initial_mapping: vec![0, 1, 2, 3],
            schedule: vec![0, 0],
            swaps: vec![],
            depth: 1,
            swap_duration: 1,
        };
        assert_eq!(verify(&circuit, &graph, &result), Ok(()));
    }
}
