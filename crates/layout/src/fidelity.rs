//! Success-rate estimation for synthesized layouts.
//!
//! The paper's motivation (§I) is that depth and SWAP count matter because
//! they determine a NISQ circuit's *success rate*: every gate multiplies
//! in an error factor and idle time costs coherence. This module estimates
//! that figure of merit for a [`LayoutResult`] under a simple but standard
//! depolarizing + decoherence model, so layouts can be compared by the
//! quantity the paper ultimately optimizes for.

use crate::result::LayoutResult;
use olsq2_circuit::Circuit;

/// A device-level error model.
///
/// # Examples
///
/// ```
/// use olsq2_layout::ErrorModel;
/// let m = ErrorModel::default();
/// assert!(m.single_qubit_fidelity > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Fidelity of one single-qubit gate.
    pub single_qubit_fidelity: f64,
    /// Fidelity of one two-qubit gate.
    pub two_qubit_fidelity: f64,
    /// Per-qubit, per-time-step idle (decoherence) fidelity.
    pub idle_fidelity: f64,
}

impl Default for ErrorModel {
    /// Typical published superconducting-device numbers (~99.9% 1q,
    /// ~99% 2q, long coherence relative to gate time).
    fn default() -> Self {
        ErrorModel {
            single_qubit_fidelity: 0.999,
            two_qubit_fidelity: 0.99,
            idle_fidelity: 0.9995,
        }
    }
}

/// Estimates the success probability of a layout: the product of gate
/// fidelities (SWAPs decompose into three two-qubit gates) and idle decay
/// over `depth × program qubits` qubit-steps.
///
/// The absolute number is model-dependent; its value is in *comparing*
/// layouts — fewer SWAPs and shallower depth always score higher, which
/// is exactly the paper's optimization rationale.
///
/// # Examples
///
/// ```
/// use olsq2_layout::{estimate_success_rate, ErrorModel, LayoutResult};
/// use olsq2_circuit::{Circuit, Gate, GateKind};
/// let mut c = Circuit::new(2);
/// c.push(Gate::two(GateKind::Cx, 0, 1));
/// let r = LayoutResult {
///     initial_mapping: vec![0, 1],
///     schedule: vec![0],
///     swaps: vec![],
///     depth: 1,
///     swap_duration: 3,
/// };
/// let p = estimate_success_rate(&c, &r, &ErrorModel::default());
/// assert!(p > 0.98 && p < 1.0);
/// ```
pub fn estimate_success_rate(circuit: &Circuit, result: &LayoutResult, model: &ErrorModel) -> f64 {
    let g1 = circuit.num_single_qubit_gates() as f64;
    let g2 = circuit.num_two_qubit_gates() as f64;
    let swaps = result.swap_count() as f64;
    let busy_steps = g1 + 2.0 * g2 + 2.0 * swaps * result.swap_duration.max(1) as f64;
    let total_steps = (result.depth * circuit.num_qubits()) as f64;
    let idle_steps = (total_steps - busy_steps).max(0.0);
    model.single_qubit_fidelity.powf(g1)
        * model.two_qubit_fidelity.powf(g2 + 3.0 * swaps)
        * model.idle_fidelity.powf(idle_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SwapOp;
    use olsq2_circuit::{Gate, GateKind};

    fn base() -> (Circuit, LayoutResult) {
        let mut c = Circuit::new(2);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        let r = LayoutResult {
            initial_mapping: vec![0, 1],
            schedule: vec![0],
            swaps: vec![],
            depth: 1,
            swap_duration: 1,
        };
        (c, r)
    }

    #[test]
    fn swaps_reduce_success_rate() {
        let (c, r0) = base();
        let mut r1 = r0.clone();
        r1.swaps.push(SwapOp {
            edge: 0,
            finish_time: 0,
        });
        let m = ErrorModel::default();
        assert!(estimate_success_rate(&c, &r1, &m) < estimate_success_rate(&c, &r0, &m));
    }

    #[test]
    fn depth_reduces_success_rate() {
        let (c, r0) = base();
        let mut deep = r0.clone();
        deep.depth = 50;
        deep.schedule = vec![49];
        let m = ErrorModel::default();
        assert!(estimate_success_rate(&c, &deep, &m) < estimate_success_rate(&c, &r0, &m));
    }

    #[test]
    fn perfect_model_gives_one() {
        let (c, r) = base();
        let m = ErrorModel {
            single_qubit_fidelity: 1.0,
            two_qubit_fidelity: 1.0,
            idle_fidelity: 1.0,
        };
        assert_eq!(estimate_success_rate(&c, &r, &m), 1.0);
    }

    #[test]
    fn rates_stay_in_unit_interval() {
        let (c, mut r) = base();
        r.depth = 1000;
        for e in 0..5 {
            r.swaps.push(SwapOp {
                edge: e,
                finish_time: 0,
            });
        }
        let p = estimate_success_rate(&c, &r, &ErrorModel::default());
        assert!((0.0..=1.0).contains(&p));
    }
}
