//! # olsq2-layout
//!
//! Shared layout-synthesis result model for the OLSQ2 reproduction: the
//! [`LayoutResult`] type (initial mapping `π⁰`, gate schedule `t_g`,
//! inserted SWAPs), the [`verify`] oracle that checks the five validity
//! constraints of the paper's §II-A, and [`emit_physical_circuit`] which
//! reconstructs the executable circuit of Fig. 4.
//!
//! Both the exact synthesizers (`olsq2` crate) and the heuristic baselines
//! (`olsq2-heuristic`) produce this type, and every test in the workspace
//! funnels results through [`verify`].
//!
//! ## Example
//!
//! ```
//! use olsq2_layout::{verify, LayoutResult};
//! use olsq2_arch::line;
//! use olsq2_circuit::{Circuit, Gate, GateKind};
//!
//! let mut circuit = Circuit::new(2);
//! circuit.push(Gate::two(GateKind::Cx, 0, 1));
//! let result = LayoutResult {
//!     initial_mapping: vec![0, 1],
//!     schedule: vec![0],
//!     swaps: vec![],
//!     depth: 1,
//!     swap_duration: 3,
//! };
//! assert_eq!(verify(&circuit, &line(2), &result), Ok(()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod emit;
mod fidelity;
mod result;
mod verify;

pub use emit::emit_physical_circuit;
pub use fidelity::{estimate_success_rate, ErrorModel};
pub use result::{LayoutResult, SwapOp};
pub use verify::{verify, verify_with_dag, Violation};
