//! Layout synthesis outputs: qubit mappings, gate schedules, and SWAPs.

use std::fmt;

/// A SWAP operation inserted by the synthesizer.
///
/// Per the paper's convention, a SWAP on edge `e` *finishes* at
/// `finish_time` and occupies both endpoints for the preceding
/// `swap_duration` steps (`finish_time - S_D + 1 ..= finish_time`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwapOp {
    /// Index of the coupling-graph edge the SWAP acts on.
    pub edge: usize,
    /// The last time step the SWAP occupies.
    pub finish_time: usize,
}

/// A complete layout synthesis result for one circuit on one device:
/// initial mapping `π⁰`, a schedule `t_g` per gate, and the inserted
/// SWAPs. Mappings at later times are derived by replaying the SWAPs.
///
/// # Examples
///
/// ```
/// use olsq2_layout::{LayoutResult, SwapOp};
/// let r = LayoutResult {
///     initial_mapping: vec![0, 1, 2],
///     schedule: vec![0, 1],
///     swaps: vec![SwapOp { edge: 0, finish_time: 0 }],
///     depth: 2,
///     swap_duration: 1,
/// };
/// assert_eq!(r.swap_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutResult {
    /// `initial_mapping[q]` is the physical qubit hosting program qubit `q`
    /// at time 0 (`π_q⁰`).
    pub initial_mapping: Vec<u16>,
    /// `schedule[g]` is the execution time step of gate `g` (`t_g`),
    /// index-aligned with the circuit's gate list.
    pub schedule: Vec<usize>,
    /// Inserted SWAP operations.
    pub swaps: Vec<SwapOp>,
    /// Total number of time steps used (1 + the latest finish time).
    pub depth: usize,
    /// SWAP duration `S_D` in time steps (1 for QAOA, 3 otherwise in the
    /// paper's experiments).
    pub swap_duration: usize,
}

impl LayoutResult {
    /// Number of inserted SWAP gates.
    pub fn swap_count(&self) -> usize {
        self.swaps.len()
    }

    /// The program→physical mapping in effect *at* time step `t` — SWAPs
    /// take effect the step after they finish (`π⁹` after a SWAP finishing
    /// at 8, as in the paper's Fig. 4).
    ///
    /// `edges[e]` must be the device edge list the SWAP indices refer to.
    pub fn mapping_at(&self, t: usize, edges: &[(u16, u16)]) -> Vec<u16> {
        let mut mapping = self.initial_mapping.clone();
        let mut ordered: Vec<&SwapOp> = self.swaps.iter().filter(|s| s.finish_time < t).collect();
        ordered.sort_by_key(|s| s.finish_time);
        for swap in ordered {
            let (a, b) = edges[swap.edge];
            for m in &mut mapping {
                if *m == a {
                    *m = b;
                } else if *m == b {
                    *m = a;
                }
            }
        }
        mapping
    }

    /// The mapping after all SWAPs completed.
    pub fn final_mapping(&self, edges: &[(u16, u16)]) -> Vec<u16> {
        self.mapping_at(usize::MAX, edges)
    }
}

impl fmt::Display for LayoutResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "depth {} / {} swaps (S_D={})",
            self.depth,
            self.swaps.len(),
            self.swap_duration
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_replay_matches_fig4_convention() {
        // Two program qubits on a 2-qubit line; one SWAP finishing at t=2.
        let r = LayoutResult {
            initial_mapping: vec![0, 1],
            schedule: vec![],
            swaps: vec![SwapOp {
                edge: 0,
                finish_time: 2,
            }],
            depth: 4,
            swap_duration: 3,
        };
        let edges = [(0u16, 1u16)];
        assert_eq!(r.mapping_at(0, &edges), vec![0, 1]);
        assert_eq!(r.mapping_at(2, &edges), vec![0, 1]); // still during the swap
        assert_eq!(r.mapping_at(3, &edges), vec![1, 0]); // effective after finish
        assert_eq!(r.final_mapping(&edges), vec![1, 0]);
    }

    #[test]
    fn swaps_compose_in_time_order() {
        // Line 0-1-2; swap(0,1) finishing t=0, then swap(1,2) finishing t=1.
        let edges = [(0u16, 1u16), (1, 2)];
        let r = LayoutResult {
            initial_mapping: vec![0, 1, 2],
            schedule: vec![],
            swaps: vec![
                SwapOp {
                    edge: 1,
                    finish_time: 1,
                },
                SwapOp {
                    edge: 0,
                    finish_time: 0,
                },
            ],
            depth: 3,
            swap_duration: 1,
        };
        // After swap(0,1): [1,0,2]; after swap(1,2): [2,0,1].
        assert_eq!(r.final_mapping(&edges), vec![2, 0, 1]);
    }
}
