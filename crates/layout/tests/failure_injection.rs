//! Failure injection on the verifier: start from a known-valid layout and
//! apply random corruptions; the verifier must flag every corrupted
//! variant (or the corruption must be provably harmless).
//!
//! This guards the guard: all optimality claims in this repository rest on
//! `verify` being sound, so `verify` itself is adversarially tested.

use olsq2_arch::{grid, CouplingGraph};
use olsq2_circuit::{Circuit, Gate, GateKind, Operands};
use olsq2_layout::{verify, LayoutResult, SwapOp};
use olsq2_prng::Rng;

/// A hand-built valid instance: a 2x3 grid with a routed 4-qubit circuit.
fn valid_instance() -> (Circuit, CouplingGraph, LayoutResult) {
    // Device: 2x3 grid, qubits 0..6 (0-1-2 / 3-4-5).
    let device = grid(3, 2);
    let mut circuit = Circuit::new(4);
    circuit.push(Gate::two(GateKind::Cx, 0, 1)); // t=0 on p0,p1
    circuit.push(Gate::one(GateKind::H, 2)); // t=0 on p3
    circuit.push(Gate::two(GateKind::Cx, 1, 2)); // needs p1? q1@p1,q2@p3 not adjacent...
    circuit.push(Gate::two(GateKind::Cx, 0, 3)); // q0@p0, q3@p4
                                                 // Mapping: q0->p0, q1->p1, q2->p3, q3->p4.
                                                 // cx(1,2): p1 and p3 NOT adjacent (3 is below 0). Use a swap p0<->p3
                                                 // after gate 0: then q0 moves to p3? No — swap moves whoever sits there.
                                                 // Simpler: route cx(1,2) via swap on edge (p1,p4)? p1-p4 is vertical: adjacent.
                                                 // After swapping p1<->p4: q1 -> p4; p4 adjacent to p3 => cx(q1,q2) ok.
                                                 // cx(0,3): q0@p0, q3@p1 (q3 was at p4, swapped to p1): p0-p1 adjacent.
    let e_p1_p4 = device.edge_between(1, 4).expect("edge");
    let result = LayoutResult {
        initial_mapping: vec![0, 1, 3, 4],
        schedule: vec![0, 0, 2, 2],
        swaps: vec![SwapOp {
            edge: e_p1_p4,
            finish_time: 1,
        }],
        depth: 3,
        swap_duration: 1,
    };
    (circuit, device, result)
}

#[test]
fn the_base_instance_is_valid() {
    let (c, g, r) = valid_instance();
    assert_eq!(verify(&c, &g, &r), Ok(()));
}

/// A corruption parameterized by a discriminant and two magnitudes.
fn corrupt(r: &LayoutResult, kind: u8, a: usize, b: usize) -> Option<(LayoutResult, &'static str)> {
    let mut out = r.clone();
    match kind % 6 {
        0 => {
            // Duplicate a mapping target (injectivity violation).
            let n = out.initial_mapping.len();
            let (i, j) = (a % n, b % n);
            if i == j {
                return None;
            }
            out.initial_mapping[i] = out.initial_mapping[j];
            Some((out, "duplicated mapping"))
        }
        1 => {
            // Swap two schedule entries of dependent gates.
            let n = out.schedule.len();
            let (i, j) = (a % n, b % n);
            if i == j || out.schedule[i] == out.schedule[j] {
                return None;
            }
            out.schedule.swap(i, j);
            Some((out, "shuffled schedule"))
        }
        2 => {
            // Push a gate beyond the depth window.
            let n = out.schedule.len();
            out.schedule[a % n] = out.depth + b;
            Some((out, "gate beyond depth"))
        }
        3 => {
            // Retarget a swap to a different edge (may break adjacency or
            // the mapping replay).
            if out.swaps.is_empty() {
                return None;
            }
            let k = a % out.swaps.len();
            out.swaps[k].edge = b; // possibly out of range: verifier must not panic
            Some((out, "retargeted swap"))
        }
        4 => {
            // Remove a swap the routing depends on.
            if out.swaps.is_empty() {
                return None;
            }
            let k = a % out.swaps.len();
            out.swaps.remove(k);
            Some((out, "dropped swap"))
        }
        _ => {
            // Schedule a gate inside a swap's occupancy window.
            if out.swaps.is_empty() {
                return None;
            }
            let n = out.schedule.len();
            out.schedule[a % n] = out.swaps[b % out.swaps.len()].finish_time;
            Some((out, "gate inside swap window"))
        }
    }
}

#[test]
fn corruptions_never_pass_silently() {
    // The corruption space is small enough to check exhaustively — stronger
    // than the sampled property test this replaces.
    let (circuit, device, valid) = valid_instance();
    for kind in 0u8..6 {
        for a in 0usize..8 {
            for b in 0usize..8 {
                let Some((corrupted, label)) = corrupt(&valid, kind, a, b) else {
                    continue;
                };
                if corrupted == valid {
                    continue;
                }
                // The verifier must either reject the corruption, or the
                // corrupted result must still genuinely satisfy all
                // invariants (possible for e.g. harmless schedule shuffles);
                // re-checking with an independent simulation distinguishes
                // the two.
                match verify(&circuit, &device, &corrupted) {
                    Err(_) => {} // rejected, as expected for most corruptions
                    Ok(()) => {
                        // Accepted: replay by hand and confirm adjacency of
                        // every 2q gate under the evolved mapping.
                        let edges = device.edges();
                        for (g, gate) in circuit.gates().iter().enumerate() {
                            if let Operands::Two(q1, q2) = gate.operands {
                                let t = corrupted.schedule[g];
                                let m = corrupted.mapping_at(t, edges);
                                assert!(
                                    device.is_adjacent(m[q1 as usize], m[q2 as usize]),
                                    "{label}: accepted corruption breaks adjacency"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn random_end_to_end_mutation_storm() {
    // Heavier randomized storm against a synthesized-by-hand valid result:
    // flip random fields many times; count how many mutations are caught.
    let (circuit, device, valid) = valid_instance();
    let mut rng = Rng::seed_from_u64(0xDEC0DE);
    let mut caught = 0;
    let mut total = 0;
    for _ in 0..500 {
        let kind = rng.gen_range(0u8..6);
        let a = rng.gen_range(0usize..8);
        let b = rng.gen_range(0usize..8);
        if let Some((corrupted, _)) = corrupt(&valid, kind, a, b) {
            if corrupted == valid {
                continue;
            }
            total += 1;
            if verify(&circuit, &device, &corrupted).is_err() {
                caught += 1;
            } else {
                // Accepted: must be genuinely harmless — cross-check every
                // two-qubit gate's adjacency by independent replay.
                let edges = device.edges();
                for (g, gate) in circuit.gates().iter().enumerate() {
                    if let Operands::Two(q1, q2) = gate.operands {
                        let t = corrupted.schedule[g];
                        let m = corrupted.mapping_at(t, edges);
                        assert!(
                            device.is_adjacent(m[q1 as usize], m[q2 as usize]),
                            "accepted corruption breaks adjacency"
                        );
                    }
                }
            }
        }
    }
    // Most structural corruptions are harmful and must be caught; the rest
    // were proven harmless above.
    assert!(total > 100, "storm generated too few distinct corruptions");
    assert!(
        caught as f64 >= 0.75 * total as f64,
        "verifier caught only {caught}/{total} corruptions"
    );
}
