//! The cube tree: which assumption sets partition the search space, and
//! what happened to each of them.
//!
//! Every node carries the literals its branch *adds* on top of the
//! parent's; a node's **cube** is the concatenation of branch literals
//! from the root down ([`CubeTree::path`]). Splits come in two shapes:
//!
//! * **group splits** — one child per selector of a one-hot group whose
//!   (unguarded) exactly-one constraint lives in the formula. Mutual
//!   exclusion comes from the at-most-one side; exhaustiveness from the
//!   at-least-one clause, which is what lets a stitched proof derive the
//!   parent's blocking lemma from the children's.
//! * **literal splits** — the classic `l` / `¬l` pair, exhaustive by
//!   tautology.
//!
//! The tree only ever grows (dynamic re-splitting appends children to a
//! former leaf), so node indices are stable and cheap to pass around as
//! task identifiers.

use olsq2_sat::Lit;

/// What the scheduler currently knows about one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Not yet resolved (pending or in flight).
    Open,
    /// An interior node: resolved by its children.
    Split,
    /// A solver returned UNSAT for this cube.
    Refuted,
    /// Subsumed by an assumption core from a refuted relative — never
    /// handed to a solver.
    Pruned,
    /// A solver found a model inside this cube.
    Sat,
}

/// One node of the cube tree.
#[derive(Debug, Clone)]
pub struct CubeNode {
    /// Parent index; `None` for the root.
    pub parent: Option<usize>,
    /// Literals this branch adds to the parent's cube (empty at the root).
    pub branch: Vec<Lit>,
    /// Child indices; empty for leaves.
    pub children: Vec<usize>,
    /// Resolution state.
    pub state: NodeState,
    /// Distance from the root (root = 0).
    pub depth: usize,
    /// Whether `children` split on a one-hot group (as opposed to a
    /// literal and its negation).
    pub group_split: bool,
}

/// An append-only tree of cubes rooted at the unconstrained instance.
#[derive(Debug, Clone)]
pub struct CubeTree {
    nodes: Vec<CubeNode>,
}

impl Default for CubeTree {
    fn default() -> Self {
        Self::new()
    }
}

impl CubeTree {
    /// A tree holding only the root (the whole search space).
    pub fn new() -> CubeTree {
        CubeTree {
            nodes: vec![CubeNode {
                parent: None,
                branch: Vec::new(),
                children: Vec::new(),
                state: NodeState::Open,
                depth: 0,
                group_split: false,
            }],
        }
    }

    /// Number of nodes (≥ 1).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false — the root is permanent.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The node at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: usize) -> &CubeNode {
        &self.nodes[id]
    }

    /// Sets the resolution state of `id`.
    pub fn set_state(&mut self, id: usize, state: NodeState) {
        self.nodes[id].state = state;
    }

    /// The cube of node `id`: branch literals accumulated root → `id`.
    pub fn path(&self, id: usize) -> Vec<Lit> {
        let mut rev: Vec<&[Lit]> = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            rev.push(&self.nodes[n].branch);
            cur = self.nodes[n].parent;
        }
        rev.iter().rev().flat_map(|b| b.iter().copied()).collect()
    }

    /// Splits leaf `id` into one child per entry of `branches`; marks `id`
    /// as [`NodeState::Split`] and returns the child indices.
    ///
    /// # Panics
    ///
    /// Panics if `id` already has children or `branches` has fewer than
    /// two entries (a one-way "split" would not partition anything).
    pub fn split(&mut self, id: usize, branches: Vec<Vec<Lit>>, group: bool) -> Vec<usize> {
        assert!(self.nodes[id].children.is_empty(), "node already split");
        assert!(branches.len() >= 2, "split needs at least two branches");
        let depth = self.nodes[id].depth + 1;
        let mut ids = Vec::with_capacity(branches.len());
        for branch in branches {
            let child = self.nodes.len();
            self.nodes.push(CubeNode {
                parent: Some(id),
                branch,
                children: Vec::new(),
                state: NodeState::Open,
                depth,
                group_split: false,
            });
            ids.push(child);
        }
        let n = &mut self.nodes[id];
        n.children = ids.clone();
        n.state = NodeState::Split;
        n.group_split = group;
        ids
    }

    /// Leaf indices (nodes without children), in index order.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect()
    }

    /// Whether every leaf is [`NodeState::Refuted`] or [`NodeState::Pruned`]
    /// — the all-UNSAT condition.
    pub fn all_leaves_closed(&self) -> bool {
        self.nodes
            .iter()
            .filter(|n| n.children.is_empty())
            .all(|n| matches!(n.state, NodeState::Refuted | NodeState::Pruned))
    }

    /// Node indices in post-order (children before parents, root last) —
    /// the order proof stitching emits blocking lemmas in.
    pub fn postorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(0usize, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                out.push(id);
            } else {
                stack.push((id, true));
                for &c in self.nodes[id].children.iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::Var;

    fn lit(v: usize) -> Lit {
        Lit::positive(Var::from_index(v))
    }

    #[test]
    fn paths_concatenate_branches_from_the_root() {
        let mut t = CubeTree::new();
        let kids = t.split(0, vec![vec![lit(0)], vec![lit(1)], vec![lit(2)]], true);
        assert_eq!(kids, vec![1, 2, 3]);
        let grand = t.split(kids[1], vec![vec![lit(5)], vec![!lit(5)]], false);
        assert_eq!(t.path(0), Vec::<Lit>::new());
        assert_eq!(t.path(kids[1]), vec![lit(1)]);
        assert_eq!(t.path(grand[1]), vec![lit(1), !lit(5)]);
        assert!(!t.node(kids[1]).group_split);
        assert!(t.node(0).group_split);
        assert_eq!(t.node(grand[0]).depth, 2);
    }

    #[test]
    fn closure_tracks_leaf_states_only() {
        let mut t = CubeTree::new();
        let kids = t.split(0, vec![vec![lit(0)], vec![!lit(0)]], false);
        assert!(!t.all_leaves_closed());
        t.set_state(kids[0], NodeState::Refuted);
        t.set_state(kids[1], NodeState::Pruned);
        // The root is Split, not closed, but it is no leaf.
        assert!(t.all_leaves_closed());
        assert_eq!(t.leaves(), kids);
    }

    #[test]
    fn postorder_visits_children_before_parents() {
        let mut t = CubeTree::new();
        let kids = t.split(0, vec![vec![lit(0)], vec![!lit(0)]], false);
        let grand = t.split(kids[0], vec![vec![lit(1)], vec![!lit(1)]], false);
        let order = t.postorder();
        assert_eq!(order.len(), t.len());
        assert_eq!(*order.last().unwrap(), 0);
        let pos = |id: usize| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(grand[0]) < pos(kids[0]));
        assert!(pos(grand[1]) < pos(kids[0]));
        assert!(pos(kids[1]) < pos(0));
    }

    #[test]
    #[should_panic(expected = "at least two branches")]
    fn degenerate_split_rejected() {
        let mut t = CubeTree::new();
        t.split(0, vec![vec![lit(0)]], false);
    }
}
