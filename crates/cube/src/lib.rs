//! Cube-and-conquer for the OLSQ2 SAT pipeline.
//!
//! Partitions one hard SAT query — typically the UNSAT proof at the
//! optimum, where layout synthesis spends most of its time — into a tree
//! of **cubes** (assumption sets) via lookahead splitting, then solves
//! the cubes on a pool of incremental workers with work stealing.
//!
//! The pieces, bottom-up:
//!
//! * [`tree`] — the cube tree: branches, states, post-order walks;
//! * [`splitter`] — lookahead-scored split selection, preferring the
//!   one-hot mapping groups the encoder registers
//!   ([`SplitGroup`]) and falling back to VSIDS-ranked literals;
//! * [`engine`] — per-worker deques with steal-half, budget-triggered
//!   dynamic re-splitting, sibling pruning through assumption cores,
//!   cooperative cancellation, and clause-sharing retirement on early
//!   exit;
//! * [`stitch`] — assembling per-worker proof logs into one checkable
//!   refutation of *formula ∧ base*.
//!
//! Cubes are solved **as assumptions** on long-lived solvers, never by
//! mutating the clause database, so every lemma learned in one cube
//! carries to the next. On a single core that reuse — plus cores that
//! prune entire sibling subtrees — is where the engine beats a lone
//! solver; with real parallelism the same structure also scales out.
//!
//! # Example
//!
//! ```
//! use olsq2_cube::{solve_cubes, CubeConfig, SatCubeSolver};
//! use olsq2_obs::Recorder;
//! use olsq2_sat::{Lit, SolveResult, Var};
//!
//! let lit = |v: usize| Lit::positive(Var::from_index(v));
//! // All four clauses over two variables: UNSAT.
//! let clauses = vec![
//!     vec![lit(0), lit(1)],
//!     vec![!lit(0), lit(1)],
//!     vec![lit(0), !lit(1)],
//!     vec![!lit(0), !lit(1)],
//! ];
//! let cfg = CubeConfig { workers: 2, depth: 1, prove: true, ..Default::default() };
//! let run = solve_cubes(
//!     |_| SatCubeSolver::new(2, &clauses, true),
//!     &cfg,
//!     &Recorder::disabled(),
//! );
//! assert_eq!(run.result, SolveResult::Unsat);
//! run.proof.expect("stitched refutation").check().expect("checkable");
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod splitter;
pub mod stitch;
pub mod tree;

pub use engine::{solve_cubes, CubeConfig, CubeRun, CubeSolvable, CubeStats, SatCubeSolver};
pub use splitter::{choose_split, SplitDecision, SplitterConfig};
pub use stitch::stitch_refutation;
pub use tree::{CubeNode, CubeTree, NodeState};

// Split hints travel from the encoder to the splitter; re-exported so
// engine users need not depend on `olsq2-encode` directly.
pub use olsq2_encode::SplitGroup;
