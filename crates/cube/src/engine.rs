//! The cube scheduler: per-worker deques with steal-half work stealing,
//! budget-triggered dynamic re-splitting, sibling pruning through
//! assumption cores, and cooperative cancellation.
//!
//! # How a run proceeds
//!
//! 1. Worker 0's solver builds the **initial cube tree** by repeated
//!    lookahead splitting ([`choose_split`]) down to
//!    [`CubeConfig::depth`] levels (capped at
//!    [`CubeConfig::max_initial_cubes`] leaves).
//! 2. Leaves are dealt round-robin onto per-worker deques. Workers pop
//!    their own deque LIFO (depth-first under a re-split) and steal the
//!    front half of a victim's deque when empty — the classic
//!    steal-half discipline.
//! 3. Each cube is solved **under assumptions** (`base ∪ path`) on the
//!    worker's incremental solver, so lemmas learned in one cube carry
//!    to the next — on a single core this retained-lemma reuse, not
//!    parallelism, is where cube solving wins.
//! 4. An UNSAT cube yields an assumption core
//!    ([`Solver::final_conflict`]); when the core omits part of the
//!    cube, it is published and **prunes every untouched cube whose path
//!    contains it**. A core with *no* cube literal refutes the instance
//!    under the base assumptions alone and ends the run.
//! 5. A cube exceeding [`CubeConfig::conflict_budget`] conflicts is
//!    **re-split** in place and its children pushed locally (stealable).
//! 6. The first SAT cube — or the last refuted one — flips the shared
//!    stop flag; every solver aborts at its next conflict boundary, and
//!    early-exiting workers retire their clause-sharing endpoints
//!    ([`CubeSolvable::retire_sharing`]).
//!
//! # Proof mode
//!
//! With [`CubeConfig::prove`] set, workers must be constructed with
//! proof logging already enabled (clauses added before
//! [`Solver::enable_proof`] are not recorded) and **without** clause
//! sharing (imported lemmas carry no derivation, so stitched proofs
//! would not be self-contained). The engine turns on core lemmas
//! ([`Solver::set_core_lemmas`]) so each refuted cube contributes an
//! RUP-checkable blocking lemma, and assembles the per-worker logs into
//! one refutation via [`crate::stitch::stitch_refutation`].

use crate::splitter::{choose_split, SplitterConfig};
use crate::stitch::stitch_refutation;
use crate::tree::{CubeTree, NodeState};
use olsq2_encode::SplitGroup;
use olsq2_obs::{Probe, Recorder, SampleSource, SearchSample};
use olsq2_sat::{Lit, Proof, SolveResult, Solver};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Anything the cube engine can drive: a solver plus the instance-level
/// context (standing assumptions, split hints, sharing attachment).
pub trait CubeSolvable: Send {
    /// The underlying solver (cubes are solved through it directly).
    fn solver_mut(&mut self) -> &mut Solver;
    /// Instance-level assumptions added to every cube — bound activation
    /// literals, window guards. In proof mode these become `Original`
    /// unit clauses of the stitched refutation, which therefore refutes
    /// *formula ∧ base*.
    fn base_assumptions(&self) -> Vec<Lit>;
    /// One-hot groups the splitter may branch on (see [`SplitGroup`]).
    fn split_hints(&self) -> Vec<SplitGroup>;
    /// Called exactly once when this worker exits; implementations
    /// holding a clause-sharing endpoint retire it so the pool stops
    /// accounting for (and waiting on) this consumer.
    fn retire_sharing(&mut self) {}
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct CubeConfig {
    /// Worker threads (≥ 1; worker 0 runs on the calling thread).
    pub workers: usize,
    /// Initial cube-tree depth (number of split levels before solving).
    pub depth: usize,
    /// Cap on initial leaves (wide one-hot groups fan out quickly).
    pub max_initial_cubes: usize,
    /// Conflicts a cube may consume before it is re-split.
    pub conflict_budget: u64,
    /// Hard cap on tree depth; cubes at this depth solve to completion.
    pub max_depth: usize,
    /// Record per-worker proofs and stitch them into one refutation.
    pub prove: bool,
    /// Wall-clock cutoff; past it the run returns `Unknown`.
    pub deadline: Option<Instant>,
    /// External cancellation: when this flag turns true the run winds
    /// down and returns `Unknown`. Checked between cubes (and bounded
    /// within one by the conflict budget) — the engine writes its *own*
    /// stop flag into the solvers, so an outer controller's flag is
    /// never flipped by a finishing run.
    pub external_stop: Option<Arc<AtomicBool>>,
    /// Splitter knobs.
    pub splitter: SplitterConfig,
    /// Flight-recorder probe: when enabled, every worker records one
    /// [`SampleSource::Cube`] sample per solved cube — open cubes in the
    /// pool (`pool_depth`) and the worker's own queue length — alongside
    /// its solver's cumulative search counters.
    pub probe: Probe,
}

impl Default for CubeConfig {
    fn default() -> Self {
        CubeConfig {
            workers: 4,
            depth: 2,
            max_initial_cubes: 64,
            conflict_budget: 20_000,
            max_depth: 10,
            prove: false,
            deadline: None,
            external_stop: None,
            splitter: SplitterConfig::default(),
            probe: Probe::disabled(),
        }
    }
}

/// Counter snapshot of one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CubeStats {
    /// Cubes created by splitting (initial tree + re-splits).
    pub cubes_split: u64,
    /// Cubes a solver refuted (UNSAT under the cube's assumptions).
    pub cubes_refuted: u64,
    /// Cubes closed by a sibling's assumption core without solving.
    pub cubes_pruned_by_core: u64,
    /// Successful steal-half operations.
    pub steals: u64,
    /// Budget-triggered dynamic re-splits.
    pub resplits: u64,
}

impl CubeStats {
    /// Accumulates another run's counters (per-bound runs of one
    /// optimization sum into the outcome's totals).
    pub fn merge(&mut self, other: &CubeStats) {
        self.cubes_split += other.cubes_split;
        self.cubes_refuted += other.cubes_refuted;
        self.cubes_pruned_by_core += other.cubes_pruned_by_core;
        self.steals += other.steals;
        self.resplits += other.resplits;
    }

    /// Publishes the counters into `recorder` under `cube.*` (surfaced
    /// as `olsq2_cube_*` in the Prometheus text exposition).
    pub fn record(&self, recorder: &Recorder) {
        if !recorder.is_enabled() {
            return;
        }
        recorder.add("cube.cubes_split", self.cubes_split);
        recorder.add("cube.cubes_refuted", self.cubes_refuted);
        recorder.add("cube.cubes_pruned_by_core", self.cubes_pruned_by_core);
        recorder.add("cube.steals", self.steals);
        recorder.add("cube.resplits", self.resplits);
    }
}

/// Outcome of a cube-and-conquer run.
#[derive(Debug)]
pub struct CubeRun<W> {
    /// The verdict: SAT as soon as any cube is satisfiable, UNSAT when
    /// every cube is refuted or the base assumptions alone are, Unknown
    /// on deadline/cancellation.
    pub result: SolveResult,
    /// On SAT: index into [`CubeRun::workers`] of the solver holding the
    /// model.
    pub sat_worker: Option<usize>,
    /// Every worker, by index — handed back so callers can reuse the
    /// warmed-up incremental solvers (and their learned clauses) for the
    /// next bound.
    pub workers: Vec<W>,
    /// Scheduler counters.
    pub stats: CubeStats,
    /// On UNSAT with [`CubeConfig::prove`]: the stitched refutation.
    pub proof: Option<Proof>,
    /// The final cube tree (inspection / reporting).
    pub tree: CubeTree,
}

impl<W> CubeRun<W> {
    /// The SAT worker, when the run found a model.
    pub fn witness(&self) -> Option<&W> {
        self.sat_worker.map(|i| &self.workers[i])
    }

    /// Consumes the run, returning the SAT worker.
    pub fn into_witness(mut self) -> Option<W> {
        self.sat_worker.map(|i| self.workers.swap_remove(i))
    }
}

/// One schedulable unit: a leaf node, and whether it still runs under
/// the re-split conflict budget.
#[derive(Debug, Clone, Copy)]
struct Task {
    node: usize,
    budgeted: bool,
}

/// State shared by all workers of one run.
struct Shared {
    deques: Vec<Mutex<VecDeque<Task>>>,
    tree: Mutex<CubeTree>,
    /// Assumption cores (cube literals only) published by refuted cubes;
    /// any unsolved cube whose path contains one is pruned.
    prune_cores: Mutex<Vec<Vec<Lit>>>,
    /// Unresolved leaves; 0 ⇒ all cubes refuted/pruned ⇒ UNSAT.
    outstanding: AtomicUsize,
    stop: Arc<AtomicBool>,
    /// Index of the worker that found SAT (`usize::MAX` = none).
    sat_worker: AtomicUsize,
    /// Some cube's core contained no cube literal: UNSAT under the base
    /// assumptions alone, regardless of the remaining cubes.
    base_unsat: AtomicBool,
    timed_out: AtomicBool,
    cubes_refuted: AtomicU64,
    cubes_pruned: AtomicU64,
    cubes_split: AtomicU64,
    steals: AtomicU64,
    resplits: AtomicU64,
}

impl Shared {
    /// Closes one leaf; the last one flips the stop flag so idle and
    /// mid-solve workers wind down.
    fn close_leaf(&self) {
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.stop.store(true, Ordering::Release);
        }
    }
}

/// Runs cube-and-conquer over workers produced by `factory` (called with
/// the worker index; index 0 may be called on the caller's thread and is
/// also used to build the initial tree).
///
/// All workers must be built over the **same formula** with the same
/// base assumptions — the engine treats them as interchangeable clones
/// (clause sharing between them is sound, and any worker may solve any
/// cube). In proof mode workers must additionally have proof logging
/// enabled from construction and sharing disabled.
pub fn solve_cubes<W, F>(factory: F, cfg: &CubeConfig, recorder: &Recorder) -> CubeRun<W>
where
    W: CubeSolvable,
    F: Fn(usize) -> W + Sync,
{
    let workers = cfg.workers.max(1);
    let mut w0 = factory(0);
    let tree = build_initial_tree(&mut w0, cfg);
    let leaves = tree.leaves();
    let shared = Shared {
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        outstanding: AtomicUsize::new(leaves.len()),
        cubes_split: AtomicU64::new(tree.len() as u64 - 1),
        tree: Mutex::new(tree),
        prune_cores: Mutex::new(Vec::new()),
        stop: Arc::new(AtomicBool::new(false)),
        sat_worker: AtomicUsize::new(usize::MAX),
        base_unsat: AtomicBool::new(false),
        timed_out: AtomicBool::new(false),
        cubes_refuted: AtomicU64::new(0),
        cubes_pruned: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        resplits: AtomicU64::new(0),
    };
    for (i, &leaf) in leaves.iter().enumerate() {
        shared.deques[i % workers]
            .lock()
            .expect("deque poisoned")
            .push_back(Task {
                node: leaf,
                budgeted: true,
            });
    }

    let mut ws: Vec<(usize, W)> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for i in 1..workers {
            let shared = &shared;
            let factory = &factory;
            handles.push(s.spawn(move || {
                let w = factory(i);
                (i, worker_loop(i, w, shared, cfg))
            }));
        }
        ws.push((0, worker_loop(0, w0, &shared, cfg)));
        for h in handles {
            ws.push(h.join().expect("cube worker panicked"));
        }
    });

    let stats = CubeStats {
        cubes_split: shared.cubes_split.load(Ordering::Acquire),
        cubes_refuted: shared.cubes_refuted.load(Ordering::Acquire),
        cubes_pruned_by_core: shared.cubes_pruned.load(Ordering::Acquire),
        steals: shared.steals.load(Ordering::Acquire),
        resplits: shared.resplits.load(Ordering::Acquire),
    };
    stats.record(recorder);

    let tree = shared.tree.into_inner().expect("tree poisoned");
    let base_unsat = shared.base_unsat.load(Ordering::Acquire);
    let sat_idx = shared.sat_worker.load(Ordering::Acquire);
    let result = if sat_idx != usize::MAX {
        SolveResult::Sat
    } else if base_unsat || (!shared.timed_out.load(Ordering::Acquire) && tree.all_leaves_closed())
    {
        SolveResult::Unsat
    } else {
        SolveResult::Unknown
    };

    ws.sort_by_key(|(i, _)| *i);
    let mut workers: Vec<W> = ws.into_iter().map(|(_, w)| w).collect();

    let proof = (cfg.prove && result == SolveResult::Unsat).then(|| {
        let base = workers[0].base_assumptions();
        let proofs: Vec<Proof> = workers
            .iter_mut()
            .filter_map(|w| w.solver_mut().take_proof())
            .collect();
        stitch_refutation(&proofs, &tree, &base, base_unsat)
    });

    CubeRun {
        result,
        sat_worker: (sat_idx != usize::MAX).then_some(sat_idx),
        workers,
        stats,
        proof,
        tree,
    }
}

/// Splits the root down to `cfg.depth` levels on worker 0's solver.
fn build_initial_tree<W: CubeSolvable>(w: &mut W, cfg: &CubeConfig) -> CubeTree {
    let base = w.base_assumptions();
    let hints = w.split_hints();
    let mut tree = CubeTree::new();
    let mut frontier = vec![0usize];
    let mut num_leaves = 1usize;
    for _ in 0..cfg.depth {
        let mut next = Vec::new();
        for id in frontier {
            if num_leaves >= cfg.max_initial_cubes {
                continue;
            }
            let path = tree.path(id);
            if let Some(d) = choose_split(w.solver_mut(), &base, &path, &hints, &cfg.splitter) {
                let branches = d.branches();
                num_leaves += branches.len() - 1;
                next.extend(tree.split(id, branches, d.is_group()));
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    tree
}

fn worker_loop<W: CubeSolvable>(idx: usize, mut w: W, shared: &Shared, cfg: &CubeConfig) -> W {
    let base = w.base_assumptions();
    let hints = w.split_hints();
    {
        let s = w.solver_mut();
        s.set_stop_flag(Some(shared.stop.clone()));
        s.set_deadline(cfg.deadline);
        s.set_core_lemmas(cfg.prove);
    }
    let mut assumptions = Vec::new();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        if cfg
            .external_stop
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Acquire))
        {
            // Outer cancellation: wind the whole run down as Unknown.
            shared.timed_out.store(true, Ordering::Release);
            shared.stop.store(true, Ordering::Release);
            break;
        }
        let Some(task) = pop_or_steal(idx, shared) else {
            if shared.outstanding.load(Ordering::Acquire) == 0 {
                break;
            }
            // Another worker still holds open cubes; wait for stealable
            // re-splits or the final close.
            std::thread::yield_now();
            std::thread::sleep(std::time::Duration::from_micros(200));
            continue;
        };
        let (path, depth) = {
            let tree = shared.tree.lock().expect("tree poisoned");
            (tree.path(task.node), tree.node(task.node).depth)
        };
        let path_set: HashSet<Lit> = path.iter().copied().collect();

        // Sibling pruning: a published core contained in this path
        // refutes the cube without solving.
        let subsumed = {
            let cores = shared.prune_cores.lock().expect("cores poisoned");
            cores
                .iter()
                .any(|core| core.iter().all(|l| path_set.contains(l)))
        };
        if subsumed {
            shared
                .tree
                .lock()
                .expect("tree poisoned")
                .set_state(task.node, NodeState::Pruned);
            shared.cubes_pruned.fetch_add(1, Ordering::Relaxed);
            shared.close_leaf();
            continue;
        }

        let can_resplit = task.budgeted && depth < cfg.max_depth;
        w.solver_mut()
            .set_conflict_budget(can_resplit.then_some(cfg.conflict_budget));
        assumptions.clear();
        assumptions.extend_from_slice(&base);
        assumptions.extend_from_slice(&path);
        let res = w.solver_mut().solve(&assumptions);
        w.solver_mut().set_conflict_budget(None);
        if cfg.probe.is_enabled() {
            // One occupancy sample per solved cube; cubes are coarse
            // (thousands of conflicts), so no extra cadence gate needed.
            let stats = w.solver_mut().stats();
            cfg.probe.record(SearchSample {
                source: SampleSource::Cube,
                conflicts: stats.conflicts,
                decisions: stats.decisions,
                propagations: stats.propagations,
                restarts: stats.restarts,
                pool_depth: shared.outstanding.load(Ordering::Acquire) as u64,
                queue_len: shared.deques[idx].lock().expect("deque poisoned").len() as u64,
                ..SearchSample::default()
            });
        }

        match res {
            SolveResult::Sat => {
                if shared
                    .sat_worker
                    .compare_exchange(usize::MAX, idx, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    shared
                        .tree
                        .lock()
                        .expect("tree poisoned")
                        .set_state(task.node, NodeState::Sat);
                }
                shared.stop.store(true, Ordering::Release);
                break;
            }
            SolveResult::Unsat => {
                let core: Vec<Lit> = w
                    .solver_mut()
                    .final_conflict()
                    .iter()
                    .copied()
                    .filter(|l| path_set.contains(l))
                    .collect();
                shared
                    .tree
                    .lock()
                    .expect("tree poisoned")
                    .set_state(task.node, NodeState::Refuted);
                shared.cubes_refuted.fetch_add(1, Ordering::Relaxed);
                if core.is_empty() && !path.is_empty() {
                    // The conflict involved no cube literal: the base
                    // assumptions alone are contradictory.
                    shared.base_unsat.store(true, Ordering::Release);
                    shared.stop.store(true, Ordering::Release);
                    break;
                }
                if path.is_empty() {
                    // Degenerate single-cube tree: the root solve settled
                    // the instance.
                    shared.base_unsat.store(true, Ordering::Release);
                }
                if !core.is_empty() && core.len() < path.len() {
                    shared
                        .prune_cores
                        .lock()
                        .expect("cores poisoned")
                        .push(core);
                }
                shared.close_leaf();
            }
            SolveResult::Unknown => {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                if cfg.deadline.is_some_and(|d| Instant::now() >= d) {
                    shared.timed_out.store(true, Ordering::Release);
                    shared.stop.store(true, Ordering::Release);
                    break;
                }
                // Conflict budget exhausted: re-split this cube — its
                // learned clauses stay with us, so the children start
                // ahead of where the parent did.
                if can_resplit {
                    if let Some(d) =
                        choose_split(w.solver_mut(), &base, &path, &hints, &cfg.splitter)
                    {
                        let branches = d.branches();
                        let k = branches.len();
                        let ids = {
                            let mut tree = shared.tree.lock().expect("tree poisoned");
                            tree.split(task.node, branches, d.is_group())
                        };
                        shared.outstanding.fetch_add(k - 1, Ordering::AcqRel);
                        shared.resplits.fetch_add(1, Ordering::Relaxed);
                        shared.cubes_split.fetch_add(k as u64, Ordering::Relaxed);
                        let mut own = shared.deques[idx].lock().expect("deque poisoned");
                        for id in ids {
                            own.push_back(Task {
                                node: id,
                                budgeted: true,
                            });
                        }
                    } else {
                        // Nothing left to split on: solve to completion.
                        shared.deques[idx]
                            .lock()
                            .expect("deque poisoned")
                            .push_back(Task {
                                node: task.node,
                                budgeted: false,
                            });
                    }
                } else {
                    // Unbudgeted Unknown without stop/deadline can only be
                    // a cancellation race; requeue and re-check the flag.
                    shared.deques[idx]
                        .lock()
                        .expect("deque poisoned")
                        .push_back(Task {
                            node: task.node,
                            budgeted: false,
                        });
                }
            }
        }
    }
    w.retire_sharing();
    w
}

/// Pops from the worker's own deque (LIFO), or steals the front half of
/// the first non-empty victim (FIFO side — the oldest, largest cubes).
fn pop_or_steal(idx: usize, shared: &Shared) -> Option<Task> {
    if let Some(t) = shared.deques[idx]
        .lock()
        .expect("deque poisoned")
        .pop_back()
    {
        return Some(t);
    }
    let n = shared.deques.len();
    for off in 1..n {
        let victim = (idx + off) % n;
        let stolen: Vec<Task> = {
            let mut v = shared.deques[victim].lock().expect("deque poisoned");
            let len = v.len();
            if len == 0 {
                continue;
            }
            v.drain(..len.div_ceil(2)).collect()
        };
        shared.steals.fetch_add(1, Ordering::Relaxed);
        let mut own = shared.deques[idx].lock().expect("deque poisoned");
        own.extend(stolen);
        return own.pop_back();
    }
    None
}

/// A plain CNF instance as a cube-solvable worker — the raw-SAT
/// counterpart of the synthesis-model wrappers in `olsq2`.
#[derive(Debug)]
pub struct SatCubeSolver {
    solver: Solver,
    base: Vec<Lit>,
    hints: Vec<SplitGroup>,
}

impl SatCubeSolver {
    /// Builds a worker over `clauses` with `num_vars` variables. With
    /// `prove`, proof logging is enabled *before* any clause is added,
    /// as stitching requires.
    pub fn new(num_vars: usize, clauses: &[Vec<Lit>], prove: bool) -> SatCubeSolver {
        let mut solver = Solver::new();
        if prove {
            solver.enable_proof();
        }
        while solver.num_vars() < num_vars {
            solver.new_var();
        }
        for c in clauses {
            solver.add_clause(c.iter().copied());
        }
        SatCubeSolver {
            solver,
            base: Vec::new(),
            hints: Vec::new(),
        }
    }

    /// Sets standing assumptions added to every cube.
    pub fn set_base(&mut self, base: Vec<Lit>) {
        self.base = base;
    }

    /// Registers a one-hot split hint. The formula must contain an
    /// unguarded exactly-one constraint over `group.lits`.
    pub fn add_hint(&mut self, group: SplitGroup) {
        self.hints.push(group);
    }

    /// The underlying solver (model extraction after SAT).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// An O(memcpy) copy of this worker via [`Solver::fork`]: the child
    /// shares the formula, learned clauses, phases, and activities, but
    /// starts with fresh statistics, budgets, and no exchange endpoint.
    /// Standing assumptions and split hints carry over, so a cohort can
    /// be spawned from one encoded worker instead of `n` rebuilds.
    pub fn fork(&mut self) -> SatCubeSolver {
        SatCubeSolver {
            solver: self.solver.fork(),
            base: self.base.clone(),
            hints: self.hints.clone(),
        }
    }
}

impl CubeSolvable for SatCubeSolver {
    fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    fn base_assumptions(&self) -> Vec<Lit> {
        self.base.clone()
    }

    fn split_hints(&self) -> Vec<SplitGroup> {
        self.hints.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_encode::{exactly_one, AmoEncoding, Cnf, CnfSink, ConstraintFamily};
    use olsq2_sat::Var;

    fn lit(v: usize) -> Lit {
        Lit::positive(Var::from_index(v))
    }

    /// Pigeonhole principle `php(n+1, n)`: UNSAT, exponential for
    /// resolution — a classic cube target. Returns (vars, clauses, the
    /// per-pigeon one-hot groups).
    fn pigeonhole(holes: usize) -> (usize, Vec<Vec<Lit>>, Vec<Vec<Lit>>) {
        let pigeons = holes + 1;
        let mut cnf = Cnf::new();
        let vars: Vec<Vec<Lit>> = (0..pigeons)
            .map(|_| {
                (0..holes)
                    .map(|_| Lit::positive(cnf.new_var()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for row in &vars {
            cnf.add_clause(row); // each pigeon somewhere
        }
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                for (&a, &b) in vars[p1].iter().zip(&vars[p2]) {
                    cnf.add_clause(&[!a, !b]); // no two pigeons share a hole
                }
            }
        }
        (cnf.num_vars(), cnf.clauses().to_vec(), vars)
    }

    #[test]
    fn sat_instance_yields_witness_with_model() {
        // (a ∨ b) ∧ (¬a ∨ b): b must hold.
        let clauses = vec![vec![lit(0), lit(1)], vec![!lit(0), lit(1)]];
        let cfg = CubeConfig {
            workers: 2,
            depth: 1,
            ..Default::default()
        };
        let run = solve_cubes(
            |_| SatCubeSolver::new(2, &clauses, false),
            &cfg,
            &Recorder::disabled(),
        );
        assert_eq!(run.result, SolveResult::Sat);
        let w = run.witness().expect("witness");
        assert_eq!(w.solver().model_value(lit(1)), Some(true));
        assert_eq!(run.workers.len(), 2, "all workers are handed back");
    }

    #[test]
    fn unsat_instance_closes_every_leaf() {
        let (nv, clauses, _) = pigeonhole(3);
        let cfg = CubeConfig {
            workers: 2,
            depth: 2,
            ..Default::default()
        };
        let rec = Recorder::new();
        let run = solve_cubes(|_| SatCubeSolver::new(nv, &clauses, false), &cfg, &rec);
        assert_eq!(run.result, SolveResult::Unsat);
        // Either every leaf was closed, or some cube's core contained no
        // cube literal and the run short-circuited to instance-UNSAT.
        assert!(run.stats.cubes_refuted + run.stats.cubes_pruned_by_core >= 1);
        let snap = rec.snapshot();
        assert!(snap.counters.contains_key("cube.cubes_split"));
        assert!(snap.counters.contains_key("cube.steals"));
    }

    #[test]
    fn onehot_hints_drive_group_splits_and_proofs_stitch() {
        let (nv, clauses, groups) = pigeonhole(4);
        let cfg = CubeConfig {
            workers: 2,
            depth: 2,
            prove: true,
            ..Default::default()
        };
        let run = solve_cubes(
            |_| {
                let mut w = SatCubeSolver::new(nv, &clauses, true);
                // Pigeon rows are at-least-one; make the hint honest by
                // using rows only (ALO present; AMO is implied by holes
                // constraints? no — so only register the first row as a
                // split dimension when it is genuinely exactly-one).
                for row in &groups {
                    w.add_hint(SplitGroup {
                        family: ConstraintFamily::Mapping,
                        lits: row.clone(),
                    });
                }
                w
            },
            &cfg,
            &Recorder::disabled(),
        );
        assert_eq!(run.result, SolveResult::Unsat);
        let proof = run.proof.expect("stitched proof");
        assert!(proof.claims_unsat());
        proof.check().expect("stitched proof is RUP-checkable");
    }

    #[test]
    fn base_assumptions_scope_the_verdict() {
        // a ∨ b with base assumption ¬b: still SAT (a). Base ¬a ∧ ¬b: UNSAT.
        let clauses = vec![vec![lit(0), lit(1)]];
        let cfg = CubeConfig {
            workers: 1,
            depth: 1,
            prove: true,
            ..Default::default()
        };
        let sat_run = solve_cubes(
            |_| {
                let mut w = SatCubeSolver::new(2, &clauses, true);
                w.set_base(vec![!lit(1)]);
                w
            },
            &cfg,
            &Recorder::disabled(),
        );
        assert_eq!(sat_run.result, SolveResult::Sat);
        let unsat_run = solve_cubes(
            |_| {
                let mut w = SatCubeSolver::new(2, &clauses, true);
                w.set_base(vec![!lit(0), !lit(1)]);
                w
            },
            &cfg,
            &Recorder::disabled(),
        );
        assert_eq!(unsat_run.result, SolveResult::Unsat);
        // The stitched proof refutes formula ∧ base.
        let proof = unsat_run.proof.expect("proof");
        proof.check().expect("checkable");
    }

    #[test]
    fn forked_cohort_matches_fresh_build_verdicts() {
        let (nv, clauses, _) = pigeonhole(3);
        let cfg = CubeConfig {
            workers: 2,
            depth: 2,
            prove: true,
            ..Default::default()
        };
        // Encode once; every pooled worker is a fork of the template.
        let template = Mutex::new(SatCubeSolver::new(nv, &clauses, true));
        let run = solve_cubes(
            |_| template.lock().expect("template poisoned").fork(),
            &cfg,
            &Recorder::disabled(),
        );
        assert_eq!(run.result, SolveResult::Unsat);
        let proof = run.proof.expect("stitched proof from forked workers");
        assert!(proof.claims_unsat());
        proof
            .check()
            .expect("forked workers' stitched proof is RUP-checkable");

        // A SAT instance through forks still yields a witness model.
        let sat_clauses = vec![vec![lit(0), lit(1)], vec![!lit(0), lit(1)]];
        let sat_template = Mutex::new(SatCubeSolver::new(2, &sat_clauses, false));
        let sat_run = solve_cubes(
            |_| sat_template.lock().expect("template poisoned").fork(),
            &CubeConfig {
                workers: 2,
                depth: 1,
                ..Default::default()
            },
            &Recorder::disabled(),
        );
        assert_eq!(sat_run.result, SolveResult::Sat);
        let w = sat_run.witness().expect("witness");
        assert_eq!(w.solver().model_value(lit(1)), Some(true));
    }

    #[test]
    fn preset_external_stop_cancels_the_run() {
        let (nv, clauses, _) = pigeonhole(4);
        let flag = Arc::new(AtomicBool::new(true));
        let cfg = CubeConfig {
            workers: 2,
            depth: 2,
            external_stop: Some(flag.clone()),
            ..Default::default()
        };
        let run = solve_cubes(
            |_| SatCubeSolver::new(nv, &clauses, false),
            &cfg,
            &Recorder::disabled(),
        );
        assert_eq!(run.result, SolveResult::Unknown);
        assert!(
            flag.load(Ordering::Acquire),
            "the engine reads but never writes the external flag"
        );
    }

    #[test]
    fn resplitting_kicks_in_under_tiny_budgets() {
        let (nv, clauses, _) = pigeonhole(5);
        let cfg = CubeConfig {
            workers: 2,
            depth: 1,
            conflict_budget: 5,
            max_depth: 6,
            ..Default::default()
        };
        let run = solve_cubes(
            |_| SatCubeSolver::new(nv, &clauses, false),
            &cfg,
            &Recorder::disabled(),
        );
        assert_eq!(run.result, SolveResult::Unsat);
        assert!(
            run.stats.resplits > 0,
            "budget of 5 conflicts must trigger re-splits"
        );
    }

    #[test]
    fn exactly_one_group_split_is_exhaustive_in_stitched_proof() {
        // A formula whose only structure is one exactly-one group plus
        // constraints refuting each selector: UNSAT, and the stitched
        // proof must lean on the ALO clause for exhaustiveness.
        let mut cnf = Cnf::new();
        let sels: Vec<Lit> = (0..3).map(|_| Lit::positive(cnf.new_var())).collect();
        exactly_one(&mut cnf, &sels, AmoEncoding::Pairwise);
        let x = Lit::positive(cnf.new_var());
        for &s in &sels {
            cnf.add_clause(&[!s, x]);
            cnf.add_clause(&[!s, !x]);
        }
        let clauses = cnf.clauses().to_vec();
        let nv = cnf.num_vars();
        let cfg = CubeConfig {
            workers: 1,
            depth: 1,
            prove: true,
            ..Default::default()
        };
        let run = solve_cubes(
            |_| {
                let mut w = SatCubeSolver::new(nv, &clauses, true);
                w.add_hint(SplitGroup {
                    family: ConstraintFamily::Mapping,
                    lits: sels.clone(),
                });
                w
            },
            &cfg,
            &Recorder::disabled(),
        );
        assert_eq!(run.result, SolveResult::Unsat);
        assert!(run.tree.node(0).group_split);
        run.proof.expect("proof").check().expect("checkable");
    }
}
