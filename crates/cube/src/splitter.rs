//! Lookahead-scored split selection.
//!
//! The splitter ranks candidate split dimensions by how much unit
//! propagation each branch would trigger ([`olsq2_sat::Solver::lookahead`]
//! — the classic lookahead score of cube-and-conquer solvers, cf.
//! march/treengeling). Candidates come from two sources, in preference
//! order:
//!
//! 1. **one-hot groups** registered by the model builder
//!    ([`SplitGroup`], e.g. the initial-mapping selectors `π_q^0 = p`):
//!    asserting each selector in turn partitions the space exactly, and
//!    the group's at-least-one clause certifies exhaustiveness when
//!    proofs are stitched;
//! 2. **VSIDS-ranked literals**: the highest-activity variables probed in
//!    both polarities, scored by the product of the two branch
//!    propagation counts (rewarding balanced, high-propagation splits).
//!
//! A probe that conflicts outright is the best possible outcome — that
//! branch is refuted by propagation alone — and scores accordingly.

use olsq2_encode::{ConstraintFamily, SplitGroup};
use olsq2_sat::{Lit, Solver};
use std::collections::HashSet;

/// Splitter tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SplitterConfig {
    /// How many candidate one-hot groups to probe per split (the rest are
    /// ranked out by summed VSIDS activity without probing).
    pub probe_groups: usize,
    /// How many fallback literal candidates to probe per split.
    pub probe_lits: usize,
    /// Widest one-hot group worth splitting on (wider groups fan out too
    /// many cubes per level).
    pub max_group_width: usize,
}

impl Default for SplitterConfig {
    fn default() -> Self {
        SplitterConfig {
            probe_groups: 4,
            probe_lits: 8,
            max_group_width: 24,
        }
    }
}

/// The chosen split dimension for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitDecision {
    /// One child per selector of a registered one-hot group.
    Group(Vec<Lit>),
    /// Two children: the literal and its negation.
    Literal(Lit),
}

impl SplitDecision {
    /// The child branches this decision induces.
    pub fn branches(&self) -> Vec<Vec<Lit>> {
        match self {
            SplitDecision::Group(sels) => sels.iter().map(|&s| vec![s]).collect(),
            SplitDecision::Literal(l) => vec![vec![*l], vec![!*l]],
        }
    }

    /// Whether this is a one-hot group split.
    pub fn is_group(&self) -> bool {
        matches!(self, SplitDecision::Group(_))
    }
}

/// Score bonus for a branch refuted by propagation alone.
const CONFLICT_BONUS: usize = 1 << 20;

/// Picks the split dimension for the cube `base ∪ path`, or `None` when
/// no candidate exists (no unused groups, no active unfixed variables).
///
/// Probes run at the solver's root level, so this must be called between
/// `solve` invocations.
pub fn choose_split(
    solver: &mut Solver,
    base: &[Lit],
    path: &[Lit],
    hints: &[SplitGroup],
    cfg: &SplitterConfig,
) -> Option<SplitDecision> {
    let used: HashSet<u32> = base
        .iter()
        .chain(path.iter())
        .map(|l| l.var().index() as u32)
        .collect();
    if let Some(group) = best_group(solver, base, path, hints, cfg, &used) {
        return Some(SplitDecision::Group(group));
    }
    best_literal(solver, base, path, cfg, &used).map(SplitDecision::Literal)
}

/// The highest-lookahead-scoring eligible one-hot group, preferring
/// mapping-family groups (the instance's most symmetric axis).
fn best_group(
    solver: &mut Solver,
    base: &[Lit],
    path: &[Lit],
    hints: &[SplitGroup],
    cfg: &SplitterConfig,
    used: &HashSet<u32>,
) -> Option<Vec<Lit>> {
    // Eligible: within width, not already branched on along this path.
    let eligible = |g: &&SplitGroup| {
        g.lits.len() >= 2
            && g.lits.len() <= cfg.max_group_width
            && !g
                .lits
                .iter()
                .any(|l| used.contains(&(l.var().index() as u32)))
    };
    let mut candidates: Vec<&SplitGroup> = hints
        .iter()
        .filter(|g| g.family == ConstraintFamily::Mapping)
        .filter(eligible)
        .collect();
    if candidates.is_empty() {
        candidates = hints
            .iter()
            .filter(|g| g.family != ConstraintFamily::Mapping)
            .filter(eligible)
            .collect();
    }
    // Rank by summed VSIDS activity so only the liveliest few get probed.
    candidates.sort_by(|a, b| {
        let act =
            |g: &SplitGroup| -> f64 { g.lits.iter().map(|l| solver.var_activity(l.var())).sum() };
        act(b)
            .partial_cmp(&act(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    candidates.truncate(cfg.probe_groups.max(1));

    let mut probe = Vec::with_capacity(base.len() + path.len() + 1);
    let mut best: Option<(usize, Vec<Lit>)> = None;
    for g in candidates {
        let mut score = 0usize;
        for &sel in &g.lits {
            probe.clear();
            probe.extend_from_slice(base);
            probe.extend_from_slice(path);
            probe.push(sel);
            score += match solver.lookahead(&probe) {
                Some(implied) => implied,
                None => CONFLICT_BONUS,
            };
        }
        // Normalize by width so wide groups must earn their fan-out.
        score /= g.lits.len();
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, g.lits.clone()));
        }
    }
    best.map(|(_, lits)| lits)
}

/// The best VSIDS-ranked literal, scored march-style by the product of
/// both polarities' propagation counts.
fn best_literal(
    solver: &mut Solver,
    base: &[Lit],
    path: &[Lit],
    cfg: &SplitterConfig,
    used: &HashSet<u32>,
) -> Option<Lit> {
    let n = solver.num_vars();
    let mut vars: Vec<usize> = (0..n).filter(|v| !used.contains(&(*v as u32))).collect();
    vars.sort_by(|&a, &b| {
        let (aa, ab) = (
            solver.var_activity(olsq2_sat::Var::from_index(a)),
            solver.var_activity(olsq2_sat::Var::from_index(b)),
        );
        ab.partial_cmp(&aa).unwrap_or(std::cmp::Ordering::Equal)
    });
    vars.truncate(cfg.probe_lits.max(1));

    let mut probe = Vec::with_capacity(base.len() + path.len() + 1);
    let mut best: Option<(usize, Lit)> = None;
    for v in vars {
        let l = Lit::positive(olsq2_sat::Var::from_index(v));
        let mut side = |lit: Lit, probe: &mut Vec<Lit>| -> Option<usize> {
            probe.clear();
            probe.extend_from_slice(base);
            probe.extend_from_slice(path);
            probe.push(lit);
            solver.lookahead(probe)
        };
        let pos = side(l, &mut probe);
        let neg = side(!l, &mut probe);
        let score = match (pos, neg) {
            // Both sides propagate: reward balance (product).
            (Some(p), Some(q)) => (p + 1) * (q + 1),
            // One side refuted outright: the other child inherits the
            // whole subproblem, but the refuted child costs nothing.
            (None, Some(q)) => CONFLICT_BONUS + q,
            (Some(p), None) => CONFLICT_BONUS + p,
            // Both refuted: the cube itself is propagation-UNSAT.
            (None, None) => 2 * CONFLICT_BONUS,
        };
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, l));
        }
    }
    best.map(|(_, l)| l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_encode::{exactly_one, AmoEncoding, CnfSink};

    fn onehot_group(solver: &mut Solver, n: usize) -> Vec<Lit> {
        let lits: Vec<Lit> = (0..n)
            .map(|_| Lit::positive(CnfSink::new_var(solver)))
            .collect();
        exactly_one(solver, &lits, AmoEncoding::Pairwise);
        lits
    }

    #[test]
    fn prefers_registered_mapping_groups() {
        let mut solver = Solver::new();
        let sels = onehot_group(&mut solver, 3);
        let hints = vec![SplitGroup {
            family: ConstraintFamily::Mapping,
            lits: sels.clone(),
        }];
        let cfg = SplitterConfig::default();
        let d = choose_split(&mut solver, &[], &[], &hints, &cfg).expect("splittable");
        assert_eq!(d, SplitDecision::Group(sels));
        assert_eq!(d.branches().len(), 3);
    }

    #[test]
    fn groups_already_on_the_path_are_skipped() {
        let mut solver = Solver::new();
        let g1 = onehot_group(&mut solver, 3);
        let g2 = onehot_group(&mut solver, 3);
        let hints = vec![
            SplitGroup {
                family: ConstraintFamily::Mapping,
                lits: g1.clone(),
            },
            SplitGroup {
                family: ConstraintFamily::Mapping,
                lits: g2.clone(),
            },
        ];
        let cfg = SplitterConfig::default();
        let d = choose_split(&mut solver, &[], &[g1[0]], &hints, &cfg).expect("splittable");
        assert_eq!(d, SplitDecision::Group(g2));
    }

    #[test]
    fn falls_back_to_literals_without_groups() {
        let mut solver = Solver::new();
        let a = Lit::positive(CnfSink::new_var(&mut solver));
        let b = Lit::positive(CnfSink::new_var(&mut solver));
        CnfSink::add_clause(&mut solver, &[a, b]);
        let cfg = SplitterConfig::default();
        let d = choose_split(&mut solver, &[], &[], &[], &cfg).expect("splittable");
        assert!(matches!(d, SplitDecision::Literal(_)));
        assert_eq!(d.branches().len(), 2);
    }

    #[test]
    fn no_candidates_yields_none() {
        let mut solver = Solver::new();
        let a = Lit::positive(CnfSink::new_var(&mut solver));
        let cfg = SplitterConfig::default();
        // The only variable is already on the path.
        assert_eq!(choose_split(&mut solver, &[], &[a], &[], &cfg), None);
    }

    #[test]
    fn conflicting_branches_score_highest() {
        let mut solver = Solver::new();
        let a = Lit::positive(CnfSink::new_var(&mut solver));
        let b = Lit::positive(CnfSink::new_var(&mut solver));
        let c = Lit::positive(CnfSink::new_var(&mut solver));
        // a is propagation-refuted in its positive phase: ¬a ∨ b, ¬a ∨ ¬b.
        CnfSink::add_clause(&mut solver, &[!a, b]);
        CnfSink::add_clause(&mut solver, &[!a, !b]);
        CnfSink::add_clause(&mut solver, &[c, b]);
        let cfg = SplitterConfig {
            probe_lits: 8,
            ..Default::default()
        };
        let d = choose_split(&mut solver, &[], &[], &[], &cfg).expect("splittable");
        assert_eq!(d, SplitDecision::Literal(a));
    }
}
