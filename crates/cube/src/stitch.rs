//! Stitching per-worker proof logs into one checkable refutation.
//!
//! Each worker records a self-contained DRAT-style log (originals,
//! lemmas, core lemmas for refuted cubes). The stitcher concatenates
//! them into a single [`Proof`] that refutes **formula ∧ base** and
//! passes [`Proof::check`]:
//!
//! 1. **Worker logs, deletions stripped.** RUP is monotone in database
//!    growth, so replaying every worker's originals and lemmas into one
//!    database keeps each lemma checkable at its position; `Delete`
//!    steps are dropped because a clause one worker deletes may support
//!    a later lemma of another worker.
//! 2. **Base assumptions as original units.** The engine solves every
//!    cube under the instance-level base (bound activation literals,
//!    window guards); making them unit clauses scopes the refutation to
//!    that bound, exactly like the assumption-core lemma the sequential
//!    path emits.
//! 3. **Blocking lemmas in post-order.** For every tree node, children
//!    first, the lemma `¬path` is emitted:
//!    * a **refuted leaf** is RUP from its worker's core lemma (the
//!      core is a subset of `base ∪ path`, so asserting the path plus
//!      the base units falsifies it outright);
//!    * a **pruned leaf** is RUP from the *pruning sibling's* core
//!      lemma by the same argument (the core is contained in the
//!      pruned path — that is what pruning checked);
//!    * a **literal-split interior node** is RUP from its two
//!      children's lemmas (they become the units `l` and `¬l`);
//!    * a **group-split interior node** is RUP from its children's
//!      lemmas plus the group's *at-least-one* clause, which is an
//!      original of the formula ([`SplitGroup`](olsq2_encode::SplitGroup)
//!      requires an unguarded exactly-one) — this is where
//!      exhaustiveness of one-hot splits is actually checked;
//!    * the **root**'s path is empty, so its step is the empty clause.
//!
//! When a cube's conflict involved no cube literal (`base_unsat`), the
//! instance is refuted under the base alone: some worker logged a core
//! lemma over base literals only (or the empty clause outright), so the
//! stitched proof skips the tree walk and closes with `Empty` directly.
//!
//! **Sharing must be off** while proofs are recorded: an
//! [`olsq2_sat::ProofStep::Imported`] clause carries no derivation, and
//! the checker rejects it (`ImportedNotVerified`) rather than trusting
//! it silently.

use crate::tree::CubeTree;
use olsq2_sat::{Lit, Proof, ProofStep};

/// Assembles per-worker logs into one refutation of *formula ∧ base*.
///
/// `tree` must have every leaf refuted or pruned unless `base_unsat` is
/// set (in which case open leaves are irrelevant — the base alone is
/// contradictory and the tree walk is skipped).
pub fn stitch_refutation(
    worker_proofs: &[Proof],
    tree: &CubeTree,
    base: &[Lit],
    base_unsat: bool,
) -> Proof {
    let mut out = Proof::new();
    for p in worker_proofs {
        for step in p.steps() {
            if !matches!(step, ProofStep::Delete(_)) {
                out.push(step.clone());
            }
        }
    }
    for &l in base {
        out.push(ProofStep::Original(vec![l]));
    }
    if base_unsat {
        out.push(ProofStep::Empty);
        return out;
    }
    for id in tree.postorder() {
        let path = tree.path(id);
        if path.is_empty() {
            out.push(ProofStep::Empty);
        } else {
            out.push(ProofStep::Lemma(path.iter().map(|&l| !l).collect()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::Var;

    fn lit(v: usize) -> Lit {
        Lit::positive(Var::from_index(v))
    }

    /// Hand-built two-cube refutation of (a ∨ b) ∧ (¬a) ∧ (¬b): worker 0
    /// refutes cube [a], worker 1 refutes cube [¬a]; the stitched proof
    /// must derive the empty clause from their core lemmas.
    #[test]
    fn literal_split_stitches_to_checkable_refutation() {
        let (a, b) = (lit(0), lit(1));
        // All four clauses over {a, b}: UNSAT, but unit propagation on the
        // originals alone derives nothing — the stitched lemmas must do
        // real work.
        let originals = vec![vec![a, b], vec![!a, b], vec![a, !b], vec![!a, !b]];
        let mut w0 = Proof::new();
        let mut w1 = Proof::new();
        for c in &originals {
            w0.push(ProofStep::Original(c.clone()));
            w1.push(ProofStep::Original(c.clone()));
        }
        // Core lemmas: solving under assumption [a] (resp. [¬a]) conflicts
        // on the core {a} (resp. {¬a}).
        w0.push(ProofStep::Lemma(vec![!a]));
        w0.push(ProofStep::Delete(vec![a, b])); // must be stripped
        w1.push(ProofStep::Lemma(vec![a]));

        let mut tree = CubeTree::new();
        use crate::tree::NodeState;
        let kids = tree.split(0, vec![vec![a], vec![!a]], false);
        tree.set_state(kids[0], NodeState::Refuted);
        tree.set_state(kids[1], NodeState::Refuted);

        let stitched = stitch_refutation(&[w0, w1], &tree, &[], false);
        assert!(stitched.claims_unsat());
        assert!(
            !stitched
                .steps()
                .iter()
                .any(|s| matches!(s, ProofStep::Delete(_))),
            "deletions must be stripped"
        );
        stitched.check().expect("stitched proof checks");
    }

    /// A core over base literals only: the shortcut emits worker logs,
    /// base units, and the empty clause — no tree lemmas.
    #[test]
    fn base_level_core_short_circuits_the_tree_walk() {
        let (g, x) = (lit(0), lit(1));
        let mut w0 = Proof::new();
        w0.push(ProofStep::Original(vec![!g, x]));
        w0.push(ProofStep::Original(vec![!g, !x]));
        // Solving any cube under base assumption [g] conflicts on {g}.
        w0.push(ProofStep::Lemma(vec![!g]));

        let mut tree = CubeTree::new();
        tree.split(0, vec![vec![x], vec![!x]], false); // leaves still open

        let stitched = stitch_refutation(&[w0], &tree, &[g], true);
        stitched.check().expect("shortcut proof checks");
        assert!(
            !stitched
                .steps()
                .iter()
                .any(|s| matches!(s, ProofStep::Lemma(c) if c.len() == 2)),
            "no per-cube blocking lemmas on the shortcut path"
        );
    }

    /// Pruned leaves lean on the *sibling's* core lemma: only one worker
    /// ever solved, yet both children's blocking lemmas must check.
    #[test]
    fn pruned_leaves_are_covered_by_the_pruning_core() {
        let (a, s1, s2, c, d) = (lit(0), lit(1), lit(2), lit(3), lit(4));
        // Group split on the one-hot {s1, s2}; each selector is refuted
        // through an auxiliary variable, so no original is unit and the
        // ALO clause s1 ∨ s2 is what closes the root.
        let originals = vec![
            vec![s1, s2],
            vec![!s1, c],
            vec![!s1, !c],
            vec![!s2, d],
            vec![!s2, !d],
        ];
        let mut w0 = Proof::new();
        for cl in &originals {
            w0.push(ProofStep::Original(cl.clone()));
        }
        // Refuting cube [s1, a] conflicts on core {s1}: publishes {s1},
        // which prunes the sibling [s1, ¬a] without solving it.
        w0.push(ProofStep::Lemma(vec![!s1]));
        // Refuting cube [s2] conflicts on core {s2}.
        w0.push(ProofStep::Lemma(vec![!s2]));

        use crate::tree::NodeState;
        let mut tree = CubeTree::new();
        let kids = tree.split(0, vec![vec![s1], vec![s2]], true);
        let grand = tree.split(kids[0], vec![vec![a], vec![!a]], false);
        tree.set_state(grand[0], NodeState::Refuted);
        tree.set_state(grand[1], NodeState::Pruned);
        tree.set_state(kids[1], NodeState::Refuted);

        let stitched = stitch_refutation(&[w0], &tree, &[], false);
        stitched.check().expect("pruned-leaf lemmas check");
    }
}
