//! # olsq2-arch
//!
//! Coupling graphs of NISQ processors for the OLSQ2 reproduction: the
//! generic [`CouplingGraph`] type with precomputed BFS distances, plus
//! constructors for every device the paper evaluates on — rectangular
//! [`grid`]s, [`ibm_qx2`], Rigetti [`aspen4`], Google [`sycamore54`], and
//! IBM [`eagle127`] (heavy-hex).
//!
//! ## Example
//!
//! ```
//! use olsq2_arch::{sycamore54, eagle127};
//! let syc = sycamore54();
//! assert_eq!(syc.num_qubits(), 54);
//! let eagle = eagle127();
//! assert_eq!(eagle.num_qubits(), 127);
//! assert!(eagle.is_connected());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod devices;
mod graph;

pub use devices::{
    aspen4, complete, device_by_name, eagle127, grid, heavy_hex, ibm_qx2, ibm_qx5, ibm_tokyo, line,
    sycamore54,
};
pub use graph::{BuildGraphError, CouplingGraph};
