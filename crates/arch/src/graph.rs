//! The coupling graph: physical qubits and their couplers.

use std::fmt;

/// Errors from [`CouplingGraph::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildGraphError {
    /// An edge references a qubit index ≥ the qubit count.
    QubitOutOfRange {
        /// The offending edge.
        edge: (u16, u16),
        /// The declared qubit count.
        num_qubits: usize,
    },
    /// An edge connects a qubit to itself.
    SelfLoop(u16),
    /// The graph has no qubits.
    Empty,
}

impl fmt::Display for BuildGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildGraphError::QubitOutOfRange { edge, num_qubits } => write!(
                f,
                "edge ({}, {}) references a qubit outside 0..{num_qubits}",
                edge.0, edge.1
            ),
            BuildGraphError::SelfLoop(q) => write!(f, "self-loop on qubit {q}"),
            BuildGraphError::Empty => write!(f, "coupling graph must have at least one qubit"),
        }
    }
}

impl std::error::Error for BuildGraphError {}

/// A quantum processor's coupling graph `(P, E)`: vertices are physical
/// qubits, edges are two-qubit couplers (§II-A of the paper).
///
/// Edges are normalized (`p < p'`), deduplicated, and indexed; all-pairs
/// BFS distances are precomputed at construction.
///
/// # Examples
///
/// ```
/// use olsq2_arch::CouplingGraph;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = CouplingGraph::new("triangle", 3, vec![(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(g.num_qubits(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert!(g.is_adjacent(0, 2));
/// assert_eq!(g.distance(0, 2), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingGraph {
    name: String,
    num_qubits: usize,
    edges: Vec<(u16, u16)>,
    adjacency: Vec<Vec<u16>>,
    /// Edge index by (min, max) pair; linear scan is fine for device sizes,
    /// but a dense matrix is faster and small: index = p * n + p'.
    edge_index: Vec<Option<u32>>,
    /// All-pairs BFS distances; `u16::MAX` marks unreachable pairs.
    distances: Vec<u16>,
}

impl CouplingGraph {
    /// Builds a coupling graph from an edge list.
    ///
    /// Edges are normalized and deduplicated; the edge order of the result
    /// is the normalized-sorted order (stable across runs, used by the SWAP
    /// variables σ_e).
    ///
    /// # Errors
    ///
    /// Returns [`BuildGraphError`] on self-loops, out-of-range indices, or
    /// an empty vertex set.
    pub fn new(
        name: impl Into<String>,
        num_qubits: usize,
        edges: Vec<(u16, u16)>,
    ) -> Result<CouplingGraph, BuildGraphError> {
        if num_qubits == 0 {
            return Err(BuildGraphError::Empty);
        }
        let mut normalized = Vec::with_capacity(edges.len());
        for (a, b) in edges {
            if a as usize >= num_qubits || b as usize >= num_qubits {
                return Err(BuildGraphError::QubitOutOfRange {
                    edge: (a, b),
                    num_qubits,
                });
            }
            if a == b {
                return Err(BuildGraphError::SelfLoop(a));
            }
            normalized.push((a.min(b), a.max(b)));
        }
        normalized.sort_unstable();
        normalized.dedup();

        let mut adjacency = vec![Vec::new(); num_qubits];
        let mut edge_index = vec![None; num_qubits * num_qubits];
        for (i, &(a, b)) in normalized.iter().enumerate() {
            adjacency[a as usize].push(b);
            adjacency[b as usize].push(a);
            edge_index[a as usize * num_qubits + b as usize] = Some(i as u32);
            edge_index[b as usize * num_qubits + a as usize] = Some(i as u32);
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }

        let distances = all_pairs_bfs(num_qubits, &adjacency);
        Ok(CouplingGraph {
            name: name.into(),
            num_qubits,
            edges: normalized,
            adjacency,
            edge_index,
            distances,
        })
    }

    /// Human-readable device name (e.g. `"sycamore54"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits `|P|`.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of couplers `|E|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The normalized edge list, sorted; index `i` is SWAP variable edge `i`.
    pub fn edges(&self) -> &[(u16, u16)] {
        &self.edges
    }

    /// The endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e ≥ num_edges()`.
    pub fn edge(&self, e: usize) -> (u16, u16) {
        self.edges[e]
    }

    /// Neighbors of physical qubit `p`, sorted.
    pub fn neighbors(&self, p: u16) -> &[u16] {
        &self.adjacency[p as usize]
    }

    /// Whether `p` and `q` share a coupler.
    pub fn is_adjacent(&self, p: u16, q: u16) -> bool {
        self.edge_between(p, q).is_some()
    }

    /// The index of the edge between `p` and `q`, if any.
    pub fn edge_between(&self, p: u16, q: u16) -> Option<usize> {
        self.edge_index[p as usize * self.num_qubits + q as usize].map(|i| i as usize)
    }

    /// BFS hop distance between `p` and `q` (`None` if disconnected).
    pub fn distance(&self, p: u16, q: u16) -> Option<u16> {
        let d = self.distances[p as usize * self.num_qubits + q as usize];
        (d != u16::MAX).then_some(d)
    }

    /// Whether every qubit can reach every other.
    pub fn is_connected(&self) -> bool {
        self.distances.iter().all(|&d| d != u16::MAX)
    }

    /// Longest shortest path (`None` if disconnected).
    pub fn diameter(&self) -> Option<u16> {
        if !self.is_connected() {
            return None;
        }
        self.distances.iter().copied().max()
    }

    /// Maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// All edge indices incident to physical qubit `p` (the set `E_p` used
    /// by the SWAP-overlap constraints, Eq. 2–3 of the paper).
    pub fn edges_at(&self, p: u16) -> Vec<usize> {
        self.adjacency[p as usize]
            .iter()
            .map(|&q| self.edge_between(p, q).expect("adjacency implies edge"))
            .collect()
    }
}

impl fmt::Display for CouplingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} edges)",
            self.name,
            self.num_qubits,
            self.edges.len()
        )
    }
}

fn all_pairs_bfs(n: usize, adjacency: &[Vec<u16>]) -> Vec<u16> {
    let mut dist = vec![u16::MAX; n * n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        let row = start * n;
        dist[row + start] = 0;
        queue.clear();
        queue.push_back(start as u16);
        while let Some(p) = queue.pop_front() {
            let d = dist[row + p as usize];
            for &q in &adjacency[p as usize] {
                if dist[row + q as usize] == u16::MAX {
                    dist[row + q as usize] = d + 1;
                    queue.push_back(q);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_distances() {
        let g = CouplingGraph::new("path", 4, vec![(0, 1), (1, 2), (2, 3)]).expect("valid");
        assert_eq!(g.distance(0, 3), Some(3));
        assert_eq!(g.distance(3, 0), Some(3));
        assert_eq!(g.distance(1, 1), Some(0));
        assert_eq!(g.diameter(), Some(3));
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn disconnected_graph() {
        let g = CouplingGraph::new("two islands", 4, vec![(0, 1), (2, 3)]).expect("valid");
        assert!(!g.is_connected());
        assert_eq!(g.distance(0, 2), None);
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn edges_normalized_and_deduped() {
        let g = CouplingGraph::new("dup", 3, vec![(1, 0), (0, 1), (2, 1)]).expect("valid");
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(g.edge_between(1, 0), Some(0));
        assert_eq!(g.edge_between(0, 2), None);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(matches!(
            CouplingGraph::new("bad", 2, vec![(0, 2)]),
            Err(BuildGraphError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            CouplingGraph::new("loop", 2, vec![(1, 1)]),
            Err(BuildGraphError::SelfLoop(1))
        ));
        assert!(matches!(
            CouplingGraph::new("empty", 0, vec![]),
            Err(BuildGraphError::Empty)
        ));
    }

    #[test]
    fn edges_at_returns_incident_edges() {
        let g = CouplingGraph::new("star", 4, vec![(0, 1), (0, 2), (0, 3)]).expect("valid");
        assert_eq!(g.edges_at(0), vec![0, 1, 2]);
        assert_eq!(g.edges_at(2), vec![1]);
    }
}
