//! Topology generators for the devices evaluated in the paper:
//! rectangular grids, IBM QX2, Rigetti Aspen-4, Google Sycamore, and IBM
//! Eagle (heavy-hex), plus a parametric heavy-hex generator.

use crate::graph::CouplingGraph;

/// A `width × height` rectangular grid (the coupling graphs of Fig. 1 and
/// Tables I–II).
///
/// # Panics
///
/// Panics if either dimension is zero or the qubit count exceeds `u16`.
///
/// # Examples
///
/// ```
/// use olsq2_arch::grid;
/// let g = grid(5, 5);
/// assert_eq!(g.num_qubits(), 25);
/// assert_eq!(g.num_edges(), 40);
/// ```
pub fn grid(width: usize, height: usize) -> CouplingGraph {
    assert!(width > 0 && height > 0, "grid dimensions must be positive");
    assert!(width * height <= u16::MAX as usize, "grid too large");
    let idx = |r: usize, c: usize| (r * width + c) as u16;
    let mut edges = Vec::new();
    for r in 0..height {
        for c in 0..width {
            if c + 1 < width {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < height {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    CouplingGraph::new(format!("grid{width}x{height}"), width * height, edges)
        .expect("grid construction is valid")
}

/// IBM QX2: 5 qubits, 6 couplers (Fig. 3 of the paper).
pub fn ibm_qx2() -> CouplingGraph {
    CouplingGraph::new(
        "ibm-qx2",
        5,
        vec![(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
    )
    .expect("static edge list is valid")
}

/// Rigetti Aspen-4 (16 qubits): two octagonal rings fused by two couplers.
pub fn aspen4() -> CouplingGraph {
    let mut edges = Vec::new();
    for ring in 0..2u16 {
        let base = ring * 8;
        for i in 0..8u16 {
            edges.push((base + i, base + (i + 1) % 8));
        }
    }
    // Inter-octagon links as on the Rigetti lattice: the two east qubits of
    // ring A couple to the two west qubits of ring B.
    edges.push((1, 14));
    edges.push((2, 13));
    CouplingGraph::new("aspen-4", 16, edges).expect("static edge list is valid")
}

/// Google Sycamore (54 qubits): a square lattice rotated 45°, modeled as a
/// 6×9 array with row-parity diagonal couplers — each interior qubit has
/// degree 4, matching the Sycamore coupler pattern.
pub fn sycamore54() -> CouplingGraph {
    let (rows, cols) = (6usize, 9usize);
    let idx = |r: usize, c: usize| (r * cols + c) as u16;
    let mut edges = Vec::new();
    for r in 0..rows - 1 {
        for c in 0..cols {
            edges.push((idx(r, c), idx(r + 1, c)));
            if r % 2 == 0 {
                if c > 0 {
                    edges.push((idx(r, c), idx(r + 1, c - 1)));
                }
            } else if c + 1 < cols {
                edges.push((idx(r, c), idx(r + 1, c + 1)));
            }
        }
    }
    CouplingGraph::new("sycamore54", rows * cols, edges).expect("static edge list is valid")
}

/// IBM Eagle (127 qubits): the heavy-hex lattice of `ibm_washington`.
///
/// Seven rows of qubit chains (14/15/…/14) joined by 24 bridge qubits, the
/// standard 127-qubit heavy-hex arrangement.
pub fn eagle127() -> CouplingGraph {
    let mut edges: Vec<(u16, u16)> = Vec::new();
    let chain = |edges: &mut Vec<(u16, u16)>, start: u16, len: u16| {
        for i in 0..len - 1 {
            edges.push((start + i, start + i + 1));
        }
    };
    // Row chains.
    chain(&mut edges, 0, 14); // row 0: 0..=13
    chain(&mut edges, 18, 15); // row 1: 18..=32
    chain(&mut edges, 37, 15); // row 2: 37..=51
    chain(&mut edges, 56, 15); // row 3: 56..=70
    chain(&mut edges, 75, 15); // row 4: 75..=89
    chain(&mut edges, 94, 15); // row 5: 94..=108
    chain(&mut edges, 113, 14); // row 6: 113..=126
                                // Bridge qubits between rows (ibm_washington pattern).
    let bridges: [(u16, u16, u16); 24] = [
        (14, 0, 18),
        (15, 4, 22),
        (16, 8, 26),
        (17, 12, 30),
        (33, 20, 39),
        (34, 24, 43),
        (35, 28, 47),
        (36, 32, 51),
        (52, 37, 56),
        (53, 41, 60),
        (54, 45, 64),
        (55, 49, 68),
        (71, 58, 77),
        (72, 62, 81),
        (73, 66, 85),
        (74, 70, 89),
        (90, 75, 94),
        (91, 79, 98),
        (92, 83, 102),
        (93, 87, 106),
        (109, 96, 114),
        (110, 100, 118),
        (111, 104, 122),
        (112, 108, 126),
    ];
    for (bridge, up, down) in bridges {
        edges.push((bridge, up));
        edges.push((bridge, down));
    }
    CouplingGraph::new("eagle127", 127, edges).expect("static edge list is valid")
}

/// IBM QX5 (16 qubits): a 2×8 ladder, the 16-qubit device of the early
/// IBM Q experience.
pub fn ibm_qx5() -> CouplingGraph {
    // Ring of 16 with rungs: standard 2x8 arrangement.
    let mut edges = Vec::new();
    for r in 0..2u16 {
        for c in 0..7u16 {
            edges.push((r * 8 + c, r * 8 + c + 1));
        }
    }
    for c in 0..8u16 {
        edges.push((c, c + 8));
    }
    CouplingGraph::new("ibm-qx5", 16, edges).expect("static edge list is valid")
}

/// IBM Tokyo (20 qubits): a 4×5 grid with extra diagonal couplers — a
/// common mid-size target in layout-synthesis papers.
pub fn ibm_tokyo() -> CouplingGraph {
    let idx = |r: u16, c: u16| r * 5 + c;
    let mut edges = Vec::new();
    for r in 0..4u16 {
        for c in 0..5u16 {
            if c + 1 < 5 {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < 4 {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    // Diagonal pairs (both directions of the X couplings).
    for &(a, b) in &[
        (1u16, 7u16),
        (2, 6),
        (3, 9),
        (4, 8),
        (5, 11),
        (6, 10),
        (7, 13),
        (8, 12),
        (11, 17),
        (12, 16),
        (13, 19),
        (14, 18),
    ] {
        edges.push((a, b));
    }
    CouplingGraph::new("ibm-tokyo", 20, edges).expect("static edge list is valid")
}

/// A parametric heavy-hex lattice with `rows` qubit rows of `row_len`
/// qubits and bridge qubits every 4 positions, generalizing the
/// [`eagle127`] construction to arbitrary sizes.
///
/// # Panics
///
/// Panics if `rows < 2`, `row_len < 5`, or the total exceeds `u16`.
pub fn heavy_hex(rows: usize, row_len: usize) -> CouplingGraph {
    assert!(rows >= 2 && row_len >= 5);
    let bridges_per_gap = (row_len - 1) / 4;
    let total = rows * row_len + (rows - 1) * bridges_per_gap;
    assert!(total <= u16::MAX as usize, "heavy-hex too large");
    let row_start = |r: usize| (r * (row_len + bridges_per_gap)) as u16;
    let mut edges = Vec::new();
    for r in 0..rows {
        let s = row_start(r);
        for i in 0..row_len - 1 {
            edges.push((s + i as u16, s + i as u16 + 1));
        }
        if r + 1 < rows {
            let bridge_base = s + row_len as u16;
            for b in 0..bridges_per_gap {
                let offset = (b * 4) as u16 + if r % 2 == 0 { 0 } else { 2 };
                let offset = offset.min(row_len as u16 - 1);
                edges.push((bridge_base + b as u16, s + offset));
                edges.push((bridge_base + b as u16, row_start(r + 1) + offset));
            }
        }
    }
    CouplingGraph::new(format!("heavyhex{rows}x{row_len}"), total, edges)
        .expect("heavy-hex construction is valid")
}

/// A linear chain of `n` qubits (useful for tests and worst-case routing).
///
/// # Panics
///
/// Panics if `n` is zero or exceeds `u16`.
pub fn line(n: usize) -> CouplingGraph {
    assert!(n > 0 && n <= u16::MAX as usize);
    let edges = (0..n - 1).map(|i| (i as u16, i as u16 + 1)).collect();
    CouplingGraph::new(format!("line{n}"), n, edges).expect("line construction is valid")
}

/// A fully connected graph of `n` qubits (layout synthesis becomes pure
/// scheduling; useful as a control in experiments).
///
/// # Panics
///
/// Panics if `n` is zero or exceeds 512 (quadratic edge count).
pub fn complete(n: usize) -> CouplingGraph {
    assert!(n > 0 && n <= 512);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a as u16, b as u16));
        }
    }
    CouplingGraph::new(format!("complete{n}"), n, edges).expect("complete construction is valid")
}

/// Looks up a device by its CLI/manifest name: `qx2`, `qx5`, `tokyo`,
/// `aspen4`, `sycamore`, `eagle`, `grid<W>x<H>` (e.g. `grid3x3`),
/// `line<N>` (e.g. `line5`), or `complete<N>`.
///
/// Returns `None` for unrecognized names or malformed parameters.
///
/// # Examples
///
/// ```
/// use olsq2_arch::device_by_name;
/// assert_eq!(device_by_name("tokyo").unwrap().num_qubits(), 20);
/// assert_eq!(device_by_name("grid4x3").unwrap().num_qubits(), 12);
/// assert!(device_by_name("gridWxH").is_none());
/// ```
pub fn device_by_name(name: &str) -> Option<CouplingGraph> {
    match name {
        "qx2" => Some(ibm_qx2()),
        "qx5" => Some(ibm_qx5()),
        "tokyo" => Some(ibm_tokyo()),
        "aspen4" | "aspen-4" => Some(aspen4()),
        "sycamore" => Some(sycamore54()),
        "eagle" => Some(eagle127()),
        _ => {
            if let Some(rest) = name.strip_prefix("grid") {
                let (w, h) = rest.split_once('x')?;
                let (w, h) = (w.parse().ok()?, h.parse().ok()?);
                if w == 0 || h == 0 || w * h > u16::MAX as usize {
                    return None;
                }
                return Some(grid(w, h));
            }
            if let Some(rest) = name.strip_prefix("line") {
                let n: usize = rest.parse().ok()?;
                if n == 0 || n > u16::MAX as usize {
                    return None;
                }
                return Some(line(n));
            }
            if let Some(rest) = name.strip_prefix("complete") {
                let n: usize = rest.parse().ok()?;
                if n == 0 || n > 512 {
                    return None;
                }
                return Some(complete(n));
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let g = grid(7, 7);
        assert_eq!(g.num_qubits(), 49);
        assert_eq!(g.num_edges(), 2 * 7 * 6);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(12));
    }

    #[test]
    fn qx2_matches_figure_3() {
        let g = ibm_qx2();
        assert_eq!(g.num_qubits(), 5);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_adjacent(2, 4));
        assert!(!g.is_adjacent(0, 3));
        assert_eq!(g.max_degree(), 4); // qubit 2 touches everything
    }

    #[test]
    fn aspen4_shape() {
        let g = aspen4();
        assert_eq!(g.num_qubits(), 16);
        assert_eq!(g.num_edges(), 18);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn sycamore_shape() {
        let g = sycamore54();
        assert_eq!(g.num_qubits(), 54);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 4);
        // Rotated square lattice: 6 rows of 9 with diagonals.
        assert_eq!(g.num_edges(), 5 * 9 + 5 * 8);
    }

    #[test]
    fn eagle_shape() {
        let g = eagle127();
        assert_eq!(g.num_qubits(), 127);
        assert!(g.is_connected());
        // Heavy-hex: chain edges + 2 per bridge.
        let chain_edges = 13 + 14 * 5 + 13;
        assert_eq!(g.num_edges(), chain_edges + 48);
        // Heavy-hex degree is at most 3.
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn qx5_shape() {
        let g = ibm_qx5();
        assert_eq!(g.num_qubits(), 16);
        assert_eq!(g.num_edges(), 2 * 7 + 8);
        assert!(g.is_connected());
    }

    #[test]
    fn tokyo_shape() {
        let g = ibm_tokyo();
        assert_eq!(g.num_qubits(), 20);
        assert!(g.is_connected());
        // Grid edges (31) + 12 diagonals.
        assert_eq!(g.num_edges(), 31 + 12);
        assert!(g.is_adjacent(1, 7));
    }

    #[test]
    fn heavy_hex_parametric() {
        let g = heavy_hex(3, 9);
        assert!(g.is_connected());
        assert_eq!(g.num_qubits(), 3 * 9 + 2 * 2);
        assert!(g.max_degree() <= 3);
        // Bigger instance stays consistent.
        let big = heavy_hex(5, 13);
        assert!(big.is_connected());
        assert!(big.max_degree() <= 3);
    }

    #[test]
    fn line_and_complete() {
        assert_eq!(line(10).diameter(), Some(9));
        let k5 = complete(5);
        assert_eq!(k5.num_edges(), 10);
        assert_eq!(k5.diameter(), Some(1));
    }
}
