//! Umbrella crate for the OLSQ2 reproduction workspace.
//!
//! Re-exports the member crates so the repository-level `examples/` and
//! `tests/` can exercise the full public API from one place.

pub use olsq2 as core;
pub use olsq2_arch as arch;
pub use olsq2_circuit as circuit;
pub use olsq2_encode as encode;
pub use olsq2_heuristic as heuristic;
pub use olsq2_layout as layout;
pub use olsq2_sat as sat;
